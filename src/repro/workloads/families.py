"""Synthetic contention workload *families* for the scenario subsystem.

The STAMP analogues (:mod:`repro.workloads.stamp`) reproduce the
paper's Table I applications at its 16-node envelope.  The families
here are the scaling counterpart: each one isolates a single
contention mechanism and is built to stay meaningful when the mesh
grows to 32/64 nodes, where sharer counts, priority spreads and
P-Buffer/TxLB pressure exceed anything the paper measured.

* ``hotspot``   — every node read-modify-writes a tiny set of hot
  lines; sharer lists stay short but write-write contention scales
  with the node count (UD-pointer churn, rollover pressure).
* ``prodcons``  — producer-consumer chains around the mesh: node *i*
  writes a slot buffer that node *i+1* reads, so conflicts are
  neighbour-wise and the conflict graph is a ring whose diameter grows
  with the mesh (stale P-Buffer entries from far-away nodes).
* ``zipf``      — shared counters picked from a Zipf distribution: a
  few lines are read by a large fraction of the chip while the tail is
  nearly private, giving the wide sharer lists that drive false
  aborting (the paper's Figs. 2-3 mechanism) at scale.
* ``rw_mix``    — long read-only scanners against short writers, the
  asymmetric population whose polling-writer/short-reader interaction
  is the false-aborting pathology; fractions are per-node so the mix
  is stable across mesh sizes.

Every builder shares the STAMP generator signature
``(num_nodes, scale, seed, **knobs)`` — ``scale`` multiplies per-node
instance counts (smoke variants use tiny scales) — and is registered
in :data:`FAMILIES` so picklable
:class:`~repro.analysis.parallel.WorkloadSpec` descriptors can rebuild
family workloads inside sweep worker processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.sim.rng import RngFactory
from repro.workloads.base import Gap, Program, TxInstance, TxOp, Workload
from repro.workloads.generator import (
    AddressSpace,
    read_ops,
    rmw_ops,
    write_ops,
)


def _instances(base: int, scale: float) -> int:
    """Scaled per-node instance count, floor 1."""
    return max(1, round(base * scale))


def zipf_ranks(rng: random.Random, n: int, s: float, k: int) -> List[int]:
    """Draw ``k`` distinct ranks in ``[0, n)`` Zipf(s)-weighted.

    Pure-python inverse-CDF sampling (no numpy in the container);
    duplicates are resolved by walking to the next free rank, which
    preserves the head-heavy skew while keeping the draw distinct.
    """
    weights = [1.0 / (r + 1) ** s for r in range(n)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    picked: List[int] = []
    taken = set()
    for _ in range(min(k, n)):
        u = rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        r = lo
        while r in taken:
            r = (r + 1) % n
        taken.add(r)
        picked.append(r)
    return picked


# =====================================================================
# builders
# =====================================================================

def make_hotspot_workload(num_nodes: int = 16, scale: float = 1.0,
                          seed: int = 0, instances: int = 16,
                          hot_lines: int = 4, extra_reads: int = 4,
                          think: int = 2, gap: int = 60,
                          name: str = "hotspot") -> Workload:
    """Hotspot RMW: every node increments lines from one tiny region.

    The canonical shared-counter idiom — all contention funnels through
    ``hot_lines`` addresses, so every directory entry involved has the
    full chip on its interested-party list and the P-Buffer sees
    priority updates from every node between rollovers.
    """
    if hot_lines <= 0:
        raise ValueError("hot_lines must be positive")
    rf = RngFactory(seed)
    space = AddressSpace()
    hot = space.region(hot_lines, "hot")
    cold = space.region(max(num_nodes * 8, 64), "cold")
    n_inst = _instances(instances, scale)

    programs: List[Program] = []
    for n in range(num_nodes):
        rng = rf.stream(f"node{n}")
        prog: Program = []
        for i in range(n_inst):
            ops: List[TxOp] = []
            ops += rmw_ops([hot.pick(rng)], think, 0)
            if extra_reads:
                ops += read_ops(cold.pick_distinct(rng, extra_reads),
                                think, 100)
            prog.append(TxInstance(0, ops, i))
            if gap:
                prog.append(Gap(rng.randint(max(1, gap // 2), gap)))
        programs.append(prog)

    return Workload(
        name, programs, num_static_txs=1,
        description="hotspot RMW counters (all-to-few write contention)",
        params={"hot_lines": hot_lines, "extra_reads": extra_reads,
                "instances": n_inst, "think": think, "gap": gap},
    )


def make_prodcons_workload(num_nodes: int = 16, scale: float = 1.0,
                           seed: int = 0, instances: int = 12,
                           slots: int = 4, payload_reads: int = 3,
                           think: int = 2, gap: int = 50,
                           name: str = "prodcons") -> Workload:
    """Producer-consumer chains: node *i* fills the buffer node *i+1*
    drains (mod N), one transaction per slot visit.

    Conflicts are strictly neighbour-wise on the ring, so the conflict
    graph diameter grows with the mesh — a far producer's priority sits
    in a directory's P-Buffer long past its usefulness, which is
    exactly the UD-pointer-staleness regime the scaled scenarios probe.
    """
    if slots <= 0:
        raise ValueError("slots must be positive")
    rf = RngFactory(seed)
    space = AddressSpace()
    buffers = [space.region(slots, f"buf{n}") for n in range(num_nodes)]
    payload = space.region(max(num_nodes * 4, 32), "payload")
    n_inst = _instances(instances, scale)

    programs: List[Program] = []
    for n in range(num_nodes):
        rng = rf.stream(f"node{n}")
        mine = buffers[n]  # produced by node n
        upstream = buffers[(n - 1) % num_nodes]  # consumed by node n
        prog: Program = []
        for i in range(n_inst):
            # produce: write one slot of my buffer (RMW: head pointer
            # semantics — readers of the slot see the version)
            slot = mine.base + (i % slots)
            ops: List[TxOp] = list(rmw_ops([slot], think, 0))
            prog.append(TxInstance(0, ops, 2 * i))
            prog.append(Gap(rng.randint(max(1, gap // 2), gap)))
            # consume: read the matching upstream slot + payload
            up = upstream.base + (i % slots)
            cops: List[TxOp] = read_ops([up], think, 200)
            if payload_reads:
                cops += read_ops(payload.pick_distinct(rng, payload_reads),
                                 think, 300)
            prog.append(TxInstance(1, cops, 2 * i + 1))
            prog.append(Gap(rng.randint(max(1, gap // 2), gap)))
        programs.append(prog)

    return Workload(
        name, programs, num_static_txs=2,
        description="producer-consumer ring (neighbour-wise conflicts)",
        params={"slots": slots, "payload_reads": payload_reads,
                "instances": n_inst, "think": think, "gap": gap},
    )


def make_zipf_workload(num_nodes: int = 16, scale: float = 1.0,
                       seed: int = 0, instances: int = 14,
                       lines: int = 256, zipf_s: float = 1.2,
                       tx_reads: int = 6, tx_writes: int = 1,
                       think: int = 2, gap: int = 50,
                       name: str = "zipf") -> Workload:
    """Zipf-shared counters: reads and RMW targets drawn Zipf(s) from a
    shared array, so a handful of head lines accumulate chip-wide
    sharer lists while the tail stays quiet.

    The head lines are where multicast invalidation kills the most
    readers per writer — the false-aborting driver — and where PUNO's
    single-UD-pointer-per-entry approximation is under the most
    pressure (many plausible oldest readers per line).
    """
    if tx_writes > tx_reads:
        raise ValueError("tx_writes must be <= tx_reads (RMW head)")
    rf = RngFactory(seed)
    space = AddressSpace()
    shared = space.region(lines, "zipf")
    n_inst = _instances(instances, scale)

    programs: List[Program] = []
    for n in range(num_nodes):
        rng = rf.stream(f"node{n}")
        prog: Program = []
        for i in range(n_inst):
            ranks = zipf_ranks(rng, lines, zipf_s, tx_reads)
            addrs = [shared.base + r for r in ranks]
            ops: List[TxOp] = []
            # the hottest-ranked picks become RMW counters, the rest
            # plain reads — writes concentrate on the distribution head
            hot = sorted(range(len(addrs)), key=lambda j: ranks[j])
            wset = {addrs[j] for j in hot[:tx_writes]}
            ops += rmw_ops(sorted(wset), think, 0)
            ops += read_ops([a for a in addrs if a not in wset],
                            think, 100)
            prog.append(TxInstance(0, ops, i))
            if gap:
                prog.append(Gap(rng.randint(max(1, gap // 2), gap)))
        programs.append(prog)

    return Workload(
        name, programs, num_static_txs=1,
        description="Zipf-shared counters (head-heavy sharer lists)",
        params={"lines": lines, "zipf_s": zipf_s, "tx_reads": tx_reads,
                "tx_writes": tx_writes, "instances": n_inst,
                "think": think, "gap": gap},
    )


def make_rw_mix_workload(num_nodes: int = 16, scale: float = 1.0,
                         seed: int = 0, instances: int = 12,
                         shared_lines: int = 48, scan_reads: int = 24,
                         writer_writes: int = 2, reader_reads: int = 4,
                         writer_fraction: float = 0.25,
                         scanner_fraction: float = 0.25,
                         think: int = 2, gap: int = 60,
                         name: str = "rw_mix") -> Workload:
    """Long-reader/short-writer mix — the Fig. 4 pathology as a family.

    Three populations per node, drawn per instance: long read-only
    *scanners* (the persistent nackers), short *writers* whose nacked
    polling kills bystanders, and short read-only *readers* (the
    false-abort victims).  Fractions are per-node so scaling the mesh
    multiplies every population together — at 64 nodes a hot line can
    have dozens of concurrent readers under one polling writer.
    """
    if not 0.0 <= writer_fraction <= 1.0:
        raise ValueError("writer_fraction must be in [0, 1]")
    if not 0.0 <= scanner_fraction <= 1.0 - writer_fraction:
        raise ValueError("writer_fraction + scanner_fraction must be <= 1")
    rf = RngFactory(seed)
    space = AddressSpace()
    shared = space.region(shared_lines, "shared")
    n_inst = _instances(instances, scale)

    programs: List[Program] = []
    for n in range(num_nodes):
        rng = rf.stream(f"node{n}")
        prog: Program = []
        for i in range(n_inst):
            roll = rng.random()
            ops: List[TxOp] = []
            if roll < writer_fraction:
                static_id = 0
                reads = shared.pick_distinct(rng, max(writer_writes, 2))
                ops += read_ops(reads, think, 0)
                ops += write_ops(rng.sample(reads, writer_writes),
                                 think, 500)
            elif roll < writer_fraction + scanner_fraction:
                static_id = 2
                k = min(shared_lines, scan_reads)
                ops += read_ops(shared.pick_distinct(rng, k),
                                3 * think, 2000)
            else:
                static_id = 1
                ops += read_ops(shared.pick_distinct(rng, reader_reads),
                                max(1, think // 2), 1000)
            prog.append(TxInstance(static_id, ops, i))
            if gap:
                prog.append(Gap(rng.randint(max(1, gap // 2), gap)))
        programs.append(prog)

    return Workload(
        name, programs, num_static_txs=3,
        description="long-reader/short-writer mix (false-abort bait)",
        params={"shared_lines": shared_lines, "scan_reads": scan_reads,
                "writer_writes": writer_writes,
                "reader_reads": reader_reads,
                "writer_fraction": writer_fraction,
                "scanner_fraction": scanner_fraction,
                "instances": n_inst, "think": think, "gap": gap},
    )


# =====================================================================
# registry
# =====================================================================

@dataclass(frozen=True)
class FamilyMeta:
    """Registry entry: builder + the contention mechanism it isolates."""

    name: str
    builder: Callable[..., Workload]
    description: str


FAMILIES: Dict[str, FamilyMeta] = {
    "hotspot": FamilyMeta(
        "hotspot", make_hotspot_workload,
        "hotspot RMW counters: all-to-few write contention"),
    "prodcons": FamilyMeta(
        "prodcons", make_prodcons_workload,
        "producer-consumer ring: neighbour-wise conflict chains"),
    "zipf": FamilyMeta(
        "zipf", make_zipf_workload,
        "Zipf-shared counters: head-heavy sharer lists"),
    "rw_mix": FamilyMeta(
        "rw_mix", make_rw_mix_workload,
        "long readers vs short polling writers (false-abort bait)"),
}


def make_family_workload(family: str, num_nodes: int = 16,
                         scale: float = 1.0, seed: int = 0,
                         **params) -> Workload:
    """Build one family workload by registry name."""
    meta = FAMILIES.get(family)
    if meta is None:
        raise KeyError(f"unknown workload family {family!r}; "
                       f"choices: {sorted(FAMILIES)}")
    return meta.builder(num_nodes=num_nodes, scale=scale, seed=seed,
                        **params)
