"""Static workload characterization.

Computes, without simulating, the structural properties the STAMP
analogues are supposed to preserve (DESIGN.md): transaction length
distribution, read/write set sizes, RMW-ness, sharing degree, and
write-partition overlap.  Used by tests to pin the generators'
contracts and by users to understand a workload before running it.
"""

from __future__ import annotations

import statistics
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.workloads.base import Gap, NonTxOp, TxInstance, Workload


@dataclass
class Characterization:
    """Structural summary of one workload."""

    name: str
    instances: int = 0
    ops: int = 0
    reads_per_tx: List[int] = field(default_factory=list)
    writes_per_tx: List[int] = field(default_factory=list)
    think_per_tx: List[int] = field(default_factory=list)
    # addr -> set of nodes that ever read / write it
    readers: Dict[int, Set[int]] = field(
        default_factory=lambda: defaultdict(set))
    writers: Dict[int, Set[int]] = field(
        default_factory=lambda: defaultdict(set))
    rmw_pairs: int = 0  # ops that read-then-write the same line in a tx
    static_ids: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    def read_set_mean(self) -> float:
        return statistics.mean(self.reads_per_tx) if self.reads_per_tx else 0

    def write_set_mean(self) -> float:
        return (statistics.mean(self.writes_per_tx)
                if self.writes_per_tx else 0)

    def sharing_degree(self) -> float:
        """Mean number of distinct reader nodes per *written* line —
        the false-aborting driver (victims per invalidation)."""
        written = [a for a, w in self.writers.items() if w]
        if not written:
            return 0.0
        return statistics.mean(len(self.readers[a]) for a in written)

    def write_overlap(self) -> float:
        """Fraction of written lines written by more than one node —
        the write-write conflict (PUNO-immune) share."""
        written = [a for a, w in self.writers.items() if w]
        if not written:
            return 0.0
        multi = sum(1 for a in written if len(self.writers[a]) > 1)
        return multi / len(written)

    def rmw_fraction(self) -> float:
        """Fraction of transactions containing a load-then-store pair
        to the same line (what the RMW predictor exploits)."""
        if self.instances == 0:
            return 0.0
        return self.rmw_pairs / self.instances

    def summary(self) -> Dict[str, float]:
        return {
            "instances": self.instances,
            "ops": self.ops,
            "reads_per_tx": round(self.read_set_mean(), 2),
            "writes_per_tx": round(self.write_set_mean(), 2),
            "sharing_degree": round(self.sharing_degree(), 2),
            "write_overlap": round(self.write_overlap(), 3),
            "rmw_fraction": round(self.rmw_fraction(), 3),
            "static_txs": len(self.static_ids),
        }


def characterize(workload: Workload) -> Characterization:
    """Walk a workload's programs and summarize their structure."""
    c = Characterization(workload.name)
    for node, program in enumerate(workload.programs):
        for item in program:
            if isinstance(item, TxInstance):
                c.instances += 1
                c.static_ids[item.static_id] += 1
                reads: Set[int] = set()
                writes: Set[int] = set()
                think = 0
                has_rmw = False
                for op in item.ops:
                    c.ops += 1
                    think += op.think
                    if op.is_write:
                        if op.addr in reads:
                            has_rmw = True
                        writes.add(op.addr)
                        c.writers[op.addr].add(node)
                    else:
                        reads.add(op.addr)
                        c.readers[op.addr].add(node)
                c.reads_per_tx.append(len(reads))
                c.writes_per_tx.append(len(writes))
                c.think_per_tx.append(think)
                if has_rmw:
                    c.rmw_pairs += 1
            elif isinstance(item, NonTxOp):
                c.ops += 1
            elif isinstance(item, Gap):
                pass
    return c
