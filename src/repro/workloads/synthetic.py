"""Parameterized microbenchmarks with explicit contention knobs.

Used by examples, ablations and property tests: unlike the STAMP
analogues these expose the contention drivers directly —

* ``shared_lines``: size of the contended region (smaller = hotter),
* ``tx_reads`` / ``tx_writes``: set sizes,
* ``write_in_read_set``: whether writes land in lines the transaction
  (and hence its peers) read — the false-aborting driver,
* ``rmw``: read-modify-write idiom instead of separate phases,
* ``think`` / ``gap``: transaction length and spacing,
* ``writer_fraction`` / ``scanner_fraction``: population mix — the
  false-aborting pathology needs *asymmetry* (short read-only
  transactions killed while a long reader nacks a polling writer), so
  these knobs turn some instances into read-only transactions and some
  into long read-only scanners.
"""

from __future__ import annotations

import random
from typing import List

from repro.sim.rng import RngFactory
from repro.workloads.base import Gap, Program, TxInstance, TxOp, Workload
from repro.workloads.generator import (
    AddressSpace,
    read_ops,
    rmw_ops,
    write_ops,
)


def make_synthetic_workload(
    num_nodes: int = 16,
    instances: int = 20,
    shared_lines: int = 64,
    tx_reads: int = 8,
    tx_writes: int = 2,
    write_in_read_set: bool = True,
    rmw: bool = False,
    think: int = 2,
    gap: int = 40,
    writer_fraction: float = 1.0,
    scanner_fraction: float = 0.0,
    partition_writes: bool = False,
    seed: int = 3,
    name: str = "synthetic",
) -> Workload:
    """Build a contention microbenchmark with up to three static
    transactions: writers (id 0), short readers (id 1) and long
    read-only scanners (id 2)."""
    if tx_writes > tx_reads and write_in_read_set:
        raise ValueError("cannot write more lines than were read")
    if not 0.0 <= writer_fraction <= 1.0:
        raise ValueError("writer_fraction must be in [0, 1]")
    if not 0.0 <= scanner_fraction <= 1.0 - writer_fraction:
        raise ValueError("scanner_fraction + writer_fraction must be <= 1")
    rf = RngFactory(seed)
    space = AddressSpace()
    shared = space.region(shared_lines, "shared")
    slice_sz = max(1, shared_lines // num_nodes)

    programs: List[Program] = []
    for n in range(num_nodes):
        rng = rf.stream(f"node{n}")
        mine = shared.slice(min(n * slice_sz, shared_lines - slice_sz),
                            slice_sz)
        prog: Program = []
        for i in range(instances):
            ops: List[TxOp] = []
            roll = rng.random()
            if roll < writer_fraction:
                static_id = 0
                if rmw:
                    region = mine if partition_writes else shared
                    addrs = region.pick_distinct(rng, max(tx_writes, 1))
                    ops += rmw_ops(addrs, think, 0)
                    extra = tx_reads - len(addrs)
                    if extra > 0:
                        ops += read_ops(shared.pick_distinct(rng, extra),
                                        think, 100)
                else:
                    reads = shared.pick_distinct(rng, tx_reads)
                    ops += read_ops(reads, think, 0)
                    if tx_writes:
                        if partition_writes:
                            wr = mine.pick_distinct(rng, tx_writes)
                        elif write_in_read_set:
                            wr = rng.sample(reads,
                                            min(tx_writes, len(reads)))
                        else:
                            wr = shared.pick_distinct(rng, tx_writes)
                        ops += write_ops(wr, think, 500)
            elif roll < writer_fraction + scanner_fraction:
                # long read-only scanner: the persistent nacker
                static_id = 2
                k = min(shared_lines, 4 * tx_reads)
                ops += read_ops(shared.pick_distinct(rng, k),
                                3 * think, 2000)
            else:
                # short read-only transaction: the false-abort victim
                static_id = 1
                ops += read_ops(shared.pick_distinct(rng, tx_reads),
                                max(1, think // 2), 1000)
            prog.append(TxInstance(static_id, ops, i))
            if gap:
                prog.append(Gap(rng.randint(max(1, gap // 2), gap)))
        programs.append(prog)

    return Workload(
        name, programs,
        num_static_txs=1 if writer_fraction >= 1.0 else 3,
        description="synthetic contention microbenchmark",
        params={
            "shared_lines": shared_lines, "tx_reads": tx_reads,
            "tx_writes": tx_writes, "write_in_read_set": write_in_read_set,
            "rmw": rmw, "instances": instances,
            "writer_fraction": writer_fraction,
            "scanner_fraction": scanner_fraction,
            "partition_writes": partition_writes,
        },
    )
