"""Workload generation.

The paper evaluates on the eight STAMP applications.  Those are C
programs run under full-system simulation; here each is replaced by a
synthetic generator (:mod:`repro.workloads.stamp`) that preserves the
app's *contention structure* — transaction length, read/write set
sizes and overlap, read-sharing degree, RMW-ness, and the resulting
baseline abort rate (calibrated against Table I).

:mod:`repro.workloads.synthetic` adds parameterized microbenchmarks
with explicit contention knobs, used by the examples and ablations.

:mod:`repro.workloads.families` adds scale-oriented contention
families (hotspot RMW, producer-consumer chains, Zipf-shared counters,
long-reader/short-writer mixes) built for the 32/64-node scenarios.
"""

from repro.workloads.base import (
    TxOp,
    TxInstance,
    NonTxOp,
    Gap,
    Program,
    Workload,
)
from repro.workloads.families import FAMILIES, make_family_workload
from repro.workloads.generator import AddressSpace, SharedRegion
from repro.workloads.stamp import STAMP_WORKLOADS, make_stamp_workload
from repro.workloads.synthetic import make_synthetic_workload

__all__ = [
    "TxOp",
    "TxInstance",
    "NonTxOp",
    "Gap",
    "Program",
    "Workload",
    "AddressSpace",
    "SharedRegion",
    "FAMILIES",
    "STAMP_WORKLOADS",
    "make_family_workload",
    "make_stamp_workload",
    "make_synthetic_workload",
]
