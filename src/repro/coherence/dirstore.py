"""Pooled, address-interned directory-entry storage.

At 16–64 nodes a plain ``Dict[int, DirEntry]`` per home bank is fine;
at 256–1024 nodes the touched-address set is large and mostly *idle* —
a line whose directory state has decayed back to I carries ten slots,
a deque and a dict for the rest of the run.  This module splits the
storage into the two things a bank actually needs:

* :class:`DirStore` — an address-interned flat store.  Each address a
  bank ever sees is interned once into a dense slot; parallel flat
  lists hold the slot's *live* :class:`DirEntry` (or ``None``) and the
  two facts worth keeping for a retired line (its home value and its
  L2-residency bit, which seed the revived entry and the post-run
  value audit).  A retired address costs one dict entry plus two list
  slots instead of a full entry object.
* :class:`DirEntryPool` — a free list of reset :class:`DirEntry`
  objects shared by every bank in the system.  Retiring a line resets
  its entry in place (the deque and dict are ``.clear()``-ed, not
  replaced, so their allocations are reused too) and pushes it on the
  list; the next ``obtain`` anywhere pops it back.  After warm-up the
  steady state allocates nothing.

Retirement is *digest-neutral*: an entry only retires when it is
exactly the state a fresh entry would revive into (state I, unblocked,
empty wait queue), and the preserved value/in-L2 bits make the revived
entry indistinguishable from one that had been kept.  The directory
only retires when no sanitizer is attached — the sanitizer's deferred
line checks look entries up *after* the event boundary, and skipping a
check on a retired line would change the sanitized check count (and so
the sanitized golden digests).

:class:`EntriesView` keeps the old ``directory.entries`` mapping
interface alive on top of the store for audits, the sanitizer and
tests: lookups revive retired lines on access (the exact get-or-keep
semantics the plain dict had), and iteration spans every interned
address.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.coherence.states import DirState

# Message / ServiceRecord are only touched through entry attributes
# here; importing their modules would cycle back through the network.


class DirEntry:
    """Directory state for one cache line.

    ``sharers`` is an integer bitmask (bit ``n`` = node ``n`` shares
    the line): membership, add/remove and clear are int ops with no
    per-event container allocation, and the representation stays one
    object at any mesh width.
    """

    __slots__ = ("state", "sharers", "owner", "value", "in_l2", "blocked",
                 "waitq", "service", "ud", "tx_readers")

    def __init__(self) -> None:
        self.state: DirState = DirState.I
        self.sharers: int = 0
        self.owner: Optional[int] = None
        self.value: int = 0
        self.in_l2: bool = False  # False until first touch (memory fetch)
        self.blocked: bool = False
        self.waitq: Deque[Tuple] = deque()  # (msg, arrival)
        self.service = None  # Optional[ServiceRecord]
        self.ud: Optional[int] = None  # PUNO unicast-destination pointer
        # PUNO reader-epoch metadata: sharer -> timestamp of the
        # transaction whose request added it to the sharer list.
        self.tx_readers: dict = {}


class DirEntryPool:
    """Free list of reset :class:`DirEntry` objects.

    One pool serves every directory bank in a system, so an entry
    retired at one home node is the next entry obtained at any other.
    ``allocated``/``recycled`` are plain introspection counters (not
    Stats fields — pool traffic must never reach the snapshot digest).
    """

    __slots__ = ("_free", "allocated", "recycled")

    def __init__(self) -> None:
        self._free: List[DirEntry] = []
        self.allocated = 0
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self) -> DirEntry:
        if self._free:
            self.recycled += 1
            return self._free.pop()
        self.allocated += 1
        return DirEntry()

    def release(self, entry: DirEntry) -> None:
        """Reset ``entry`` in place and return it to the free list.

        The deque and dict are cleared, not replaced, so their backing
        allocations survive the round trip.
        """
        assert not entry.blocked and not entry.waitq, \
            "released a busy directory entry"
        entry.state = DirState.I
        entry.sharers = 0
        entry.owner = None
        entry.value = 0
        entry.in_l2 = False
        entry.service = None
        entry.ud = None
        entry.tx_readers.clear()
        self._free.append(entry)


class DirStore:
    """Address-interned flat store for one directory bank."""

    __slots__ = ("pool", "_slots", "_live", "_value", "_in_l2")

    def __init__(self, pool: Optional[DirEntryPool] = None) -> None:
        self.pool = pool if pool is not None else DirEntryPool()
        self._slots: Dict[int, int] = {}  # addr -> interned slot
        self._live: List[Optional[DirEntry]] = []  # slot -> entry | None
        self._value: List[int] = []  # slot -> retired home value
        self._in_l2: List[bool] = []  # slot -> retired L2-residency bit

    def __len__(self) -> int:
        """Interned (ever-touched) address count."""
        return len(self._slots)

    @property
    def live_count(self) -> int:
        return sum(1 for e in self._live if e is not None)

    def obtain(self, addr: int) -> DirEntry:
        """Get-or-create the live entry for ``addr``.

        A retired address revives from the pool with its preserved
        value/in-L2 bits; an unseen address interns a new slot.
        """
        slot = self._slots.get(addr)
        if slot is None:
            self._slots[addr] = len(self._live)
            entry = self.pool.acquire()
            self._live.append(entry)
            self._value.append(0)
            self._in_l2.append(False)
            return entry
        entry = self._live[slot]
        if entry is None:
            entry = self.pool.acquire()
            entry.value = self._value[slot]
            entry.in_l2 = self._in_l2[slot]
            self._live[slot] = entry
        return entry

    def lookup(self, addr: int) -> Optional[DirEntry]:
        """The live entry for ``addr``, without creating or reviving."""
        slot = self._slots.get(addr)
        return None if slot is None else self._live[slot]

    def retire(self, addr: int, entry: DirEntry) -> bool:
        """Return ``addr``'s entry to the pool if ``entry`` is still its
        live entry.

        Idempotent by identity check: the unblock drain loop and the
        writeback path can both observe the same settled entry, and
        only the first call retires it.  The caller guarantees the
        settled-I invariant (asserted here).
        """
        slot = self._slots.get(addr)
        if slot is None or self._live[slot] is not entry:
            return False
        assert (entry.state is DirState.I and not entry.blocked
                and not entry.waitq and entry.service is None), \
            f"retiring unsettled entry for addr {addr}"
        self._value[slot] = entry.value
        self._in_l2[slot] = entry.in_l2
        self._live[slot] = None
        self.pool.release(entry)
        return True


class EntriesView:
    """Mapping-shaped view of a :class:`DirStore`.

    Presents the pre-pool ``Dict[int, DirEntry]`` interface: item
    access revives retired lines (matching the old dict, where settled
    entries simply stayed), iteration covers every interned address.
    Audits, the sanitizer and the tests read through this; the hot
    path inside the directory bypasses it.
    """

    __slots__ = ("_store",)

    def __init__(self, store: DirStore) -> None:
        self._store = store

    def __getitem__(self, addr: int) -> DirEntry:
        store = self._store
        if addr not in store._slots:
            raise KeyError(addr)
        return store.obtain(addr)

    def get(self, addr: int, default=None):
        store = self._store
        if addr not in store._slots:
            return default
        return store.obtain(addr)

    def __contains__(self, addr: int) -> bool:
        return addr in self._store._slots

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[int]:
        return iter(self._store._slots)

    def keys(self):
        return self._store._slots.keys()

    def values(self) -> Iterator[DirEntry]:
        store = self._store
        for addr in store._slots:
            yield store.obtain(addr)

    def items(self) -> Iterator[Tuple[int, DirEntry]]:
        store = self._store
        for addr in store._slots:
            yield addr, store.obtain(addr)
