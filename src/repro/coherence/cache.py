"""Private L1 data cache model.

Set-associative, write-back, LRU replacement.  Transactionally-touched
lines are *pinned* at two strengths:

* write-set lines (pin level 2) are never evicted — the undo log
  restores into them and their M state is the conflict-detection
  anchor;
* read-set lines (pin level 1) are evicted only as a last resort, and
  only from the S state: the directory keeps silently-dropped sharers
  in its (conservative) sharer list, so forwarded invalidations still
  reach the node and the set-based conflict check still fires — the
  same effect LogTM achieves with sticky states.

A set whose ways are all write-pinned surfaces as a *capacity abort*.

Lines carry an integer ``value`` so the test suite can verify atomicity
end-to-end (committed increments must equal final memory contents).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.coherence.states import L1State
from repro.sim.config import CacheConfig


class CacheLine:
    __slots__ = ("addr", "state", "value", "pinned", "lru")

    def __init__(self, addr: int, state: L1State, value: int, lru: int):
        self.addr = addr
        self.state = state
        self.value = value
        self.pinned = 0  # 0 = free, 1 = read-set, 2 = write-set
        self.lru = lru  # last-touch stamp, larger = more recent

    def __repr__(self) -> str:  # pragma: no cover
        pin = f" pin{self.pinned}" if self.pinned else ""
        return f"<Line {self.addr} {self.state.name} v={self.value}{pin}>"


class CapacityError(Exception):
    """Raised when an install cannot find an unpinned victim."""


class L1Cache:
    """One node's private L1."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # set index -> {addr: CacheLine}; dict preserves O(1) lookup.
        self._sets: List[Dict[int, CacheLine]] = [
            {} for _ in range(config.num_sets)
        ]
        # num_sets chains two properties on a frozen dataclass — cache
        # it, _set_for runs once per access
        self._num_sets = config.num_sets
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _set_for(self, addr: int) -> Dict[int, CacheLine]:
        # Cold-path helper; hot methods inline the indexed lookup.
        return self._sets[addr % self._num_sets]

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line or None.  Updates LRU on touch."""
        line = self._sets[addr % self._num_sets].get(addr)
        if line is not None and touch:
            self._tick += 1
            line.lru = self._tick
        return line

    def install(
        self, addr: int, state: L1State, value: int
    ) -> Tuple[CacheLine, Optional[CacheLine]]:
        """Install (or update) a line.

        Returns ``(line, evicted)`` where ``evicted`` is a victim line
        that the caller must write back if it was dirty (M).

        Raises :class:`CapacityError` when every way of the target set
        is pinned by the running transaction.
        """
        cset = self._sets[addr % self._num_sets]
        self._tick += 1
        existing = cset.get(addr)
        if existing is not None:
            existing.state = state
            existing.value = value
            existing.lru = self._tick
            return existing, None
        evicted: Optional[CacheLine] = None
        if len(cset) >= self.config.ways:
            victim = self._pick_victim(cset)
            if victim is None:
                raise CapacityError(addr)
            del cset[victim.addr]
            self.evictions += 1
            evicted = victim
        line = CacheLine(addr, state, value, self._tick)
        cset[addr] = line
        return line, evicted

    def _pick_victim(self, cset: Dict[int, CacheLine]) -> Optional[CacheLine]:
        victim: Optional[CacheLine] = None
        for line in cset.values():
            if line.pinned:
                continue
            if victim is None or line.lru < victim.lru:
                victim = line
        if victim is not None:
            return victim
        # Last resort: sacrifice a read-pinned line.  S lines drop
        # silently (the directory's sharer list is conservative and the
        # conflict check is set-based); E lines are written back sticky
        # by the caller so the directory keeps the node a sharer.
        # Write-pinned (level 2) lines are never victims.
        for state in (L1State.S, L1State.E):
            for line in cset.values():
                if line.pinned == 1 and line.state is state:
                    if victim is None or line.lru < victim.lru:
                        victim = line
            if victim is not None:
                return victim
        return victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Drop a line (invalidation).  Returns the line if present."""
        return self._sets[addr % self._num_sets].pop(addr, None)

    def downgrade(self, addr: int) -> Optional[CacheLine]:
        """E/M -> S transition on a forwarded GETS."""
        line = self._sets[addr % self._num_sets].get(addr)
        if line is not None:
            line.state = L1State.S
        return line

    def pin(self, addr: int, level: int = 1) -> None:
        """Pin a line at the given strength (1 = read, 2 = write).

        Pin strength only ever increases within a transaction.
        """
        line = self._sets[addr % self._num_sets].get(addr)
        if line is not None and level > line.pinned:
            line.pinned = level

    def unpin_all(self, addrs) -> None:
        for addr in addrs:
            line = self._set_for(addr).get(addr)
            if line is not None:
                line.pinned = 0

    # ------------------------------------------------------------------
    def lines(self) -> Iterator[CacheLine]:
        for cset in self._sets:
            yield from cset.values()

    def resident(self, addr: int) -> bool:
        return addr in self._sets[addr % self._num_sets]

    def state_of(self, addr: int) -> L1State:
        line = self._sets[addr % self._num_sets].get(addr)
        return line.state if line is not None else L1State.I

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
