"""Coherence state enums.

L1 lines use MESI; the directory tracks {Invalid, Shared, Modified}
with E folded into the owner path (an E owner is tracked exactly like an
M owner — it silently upgrades on a local write, and supplies data on
forwards, clean or dirty).

Both enums are ``IntEnum`` with permission-ordered codes: ``I < S < E
< M``.  Hot paths test permissions with one int compare — readable is
``state > L1State.I``, writable is ``state >= L1State.E`` — instead of
a Python-level property or tuple-membership call per access.  The
string view lives in ``.name`` (identical to the old string values).
"""

from __future__ import annotations

import enum


class L1State(enum.IntEnum):
    # Permission-ordered codes: comparisons below rely on I < S < E < M.
    I = 0
    S = 1
    E = 2
    M = 3

    @property
    def readable(self) -> bool:
        return self > 0

    @property
    def writable(self) -> bool:
        return self >= 2


class DirState(enum.IntEnum):
    I = 0  # only the home L2/memory has the line
    S = 1  # one or more read-only sharers
    M = 2  # a single owner holds E or M
