"""Coherence state enums.

L1 lines use MESI; the directory tracks {Invalid, Shared, Modified}
with E folded into the owner path (an E owner is tracked exactly like an
M owner — it silently upgrades on a local write, and supplies data on
forwards, clean or dirty).
"""

from __future__ import annotations

import enum


class L1State(enum.Enum):
    I = "I"
    S = "S"
    E = "E"
    M = "M"

    @property
    def readable(self) -> bool:
        return self is not L1State.I

    @property
    def writable(self) -> bool:
        return self in (L1State.E, L1State.M)


class DirState(enum.Enum):
    I = "I"  # only the home L2/memory has the line
    S = "S"  # one or more read-only sharers
    M = "M"  # a single owner holds E or M
