"""Home-node directory controller (one per L2 bank).

SGI-Origin-style *blocking* directory: an entry blocks while a request
is in flight and queues subsequent requests FIFO.  Every service blocks
its entry; simple services (data supplied directly by the home bank)
unblock when the response leaves, forwarded services unblock when the
requester's UNBLOCK arrives.  The time an entry spends blocked while
servicing a *transactional GETX* is the Fig. 12 metric.

PUNO plugs in through an optional ``puno`` unit (see
:mod:`repro.core.puno`): it observes transactional requests (P-Buffer
updates), may turn a would-be multicast of a transactional GETX into a
U-bit unicast to the predicted highest-priority sharer, receives
misprediction feedback relayed on UNBLOCK, and recomputes the entry's
UD pointer off the critical path after each service.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.coherence.dirstore import DirEntry, DirEntryPool, DirStore, \
    EntriesView
from repro.coherence.states import DirState
from repro.core.bitset import bit_tuple
from repro.network.message import Message, MessageType, make_put_ack
from repro.network.network import Network
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import Stats

__all__ = ["DirEntry", "DirEntryPool", "DirectoryController",
           "ServiceRecord"]


class ServiceRecord:
    """In-flight request bookkeeping while the entry is blocked."""

    __slots__ = ("msg", "kind", "block_start", "is_txgetx", "owner_path",
                 "unicast", "requester_was_sharer", "targets",
                 "wb_received", "deferred_unblock")

    def __init__(self, msg: Message, kind: str, block_start: int,
                 is_txgetx: bool = False, owner_path: bool = False,
                 unicast: bool = False, requester_was_sharer: bool = False,
                 targets: Tuple[int, ...] = ()):
        self.msg = msg
        self.kind = kind  # 'gets' | 'getx' | 'fetch' | 'simple'
        self.block_start = block_start
        self.is_txgetx = is_txgetx
        self.owner_path = owner_path
        self.unicast = unicast
        self.requester_was_sharer = requester_was_sharer
        self.targets = targets
        # Owner-path GETS only: has the owner's WB_DATA landed, and an
        # UNBLOCK held back because it hasn't (delay injection only —
        # fault-free the WB_DATA always wins the race; see
        # _handle_wb_data).
        self.wb_received = False
        self.deferred_unblock: Optional[Message] = None


class DirectoryController:
    """The home directory + L2 slice of one node."""

    def __init__(self, sim: Simulator, node: int, config: SystemConfig,
                 network: Network, stats: Stats, puno=None,
                 pool: Optional[DirEntryPool] = None, arbiter=None):
        self.sim = sim
        self.node = node
        self.config = config
        self.network = network
        self.stats = stats
        self._dir_req_counts = stats._dir_req_counts  # SoA accumulator
        self.puno = puno  # Optional[repro.core.puno.DirectoryPUNO]
        # Scheme directory-forward policy (repro.schemes.base.DirArbiter);
        # None keeps the plain FIFO drain in _unblock.
        self.arbiter = arbiter
        self.san = None  # Optional[repro.sanitize.sanitizer.ProtocolSanitizer]
        # Address-interned entry storage; the pool is usually shared by
        # every bank in the system (System passes one), so retired
        # entries recirculate globally.  ``entries`` keeps the mapping
        # interface for audits/sanitizer/tests; the handlers below go
        # through the bound store internals.
        self.store = DirStore(pool)
        self.entries = EntriesView(self.store)
        self._slots = self.store._slots
        self._live = self.store._live
        self._obtain = self.store.obtain
        # Per-instance message dispatch (bound methods, built once).
        self.handlers = {
            MessageType.GETS: self._enqueue_or_service,
            MessageType.GETX: self._enqueue_or_service,
            MessageType.PUT: self._enqueue_or_service,
            MessageType.UNBLOCK: self._handle_unblock,
            MessageType.WB_DATA: self._handle_wb_data,
        }

    # ------------------------------------------------------------------
    # message entry point
    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> None:
        handler = self.handlers.get(msg.mtype)
        if handler is None:  # pragma: no cover - protocol bug guard
            raise ValueError(f"directory {self.node} got {msg}")
        handler(msg)

    def entry(self, addr: int) -> DirEntry:
        return self._obtain(addr)

    # ------------------------------------------------------------------
    # request dispatch / queueing
    # ------------------------------------------------------------------
    def _enqueue_or_service(self, msg: Message) -> None:
        # One store call does get-or-create (and revives a retired
        # line with its preserved value/in-L2 bits).
        entry = self._obtain(msg.addr)
        if entry.blocked:
            entry.waitq.append((msg, self.sim.now))
            return
        self._service(msg, entry)

    def _service(self, msg: Message, entry: DirEntry) -> None:
        # int-indexed accumulation; folds back to the same str keying
        # as messages_by_type at the snapshot boundary
        self._dir_req_counts[msg.mtype] += 1
        if self.stats.tracer is not None:
            self.stats.tracer.emit(
                "dir", self.sim.now, event="service", home=self.node,
                type=msg.mtype.name, addr=msg.addr, req=msg.requester,
                state=entry.state.name, sharers=entry.sharers.bit_count())
        if self.puno is not None:
            self.puno.observe_request(msg)
            if self.san is not None:
                self.san.check_pbuffer(self.puno.pbuffer)
        if msg.mtype is MessageType.GETS:
            self._service_gets(msg, entry)
        elif msg.mtype is MessageType.GETX:
            self._service_getx(msg, entry)
        else:
            self._service_put(msg, entry)

    # ------------------------------------------------------------------
    # GETS
    # ------------------------------------------------------------------
    def _service_gets(self, msg: Message, entry: DirEntry) -> None:
        if entry.state is DirState.I:
            self._fetch_and_grant(msg, entry, exclusive=True)
        elif entry.state is DirState.S:
            # Data streams from the home L2 bank; entry blocks for the
            # bank occupancy and unblocks when the response leaves.
            self._block(entry, ServiceRecord(msg, "simple", self.sim.now))
            delay = self.config.directory_latency + self.config.l2_latency
            self.sim.call_later(delay, self._finish_simple_gets, msg, entry)
        else:  # M: forward to the owner
            assert entry.owner is not None and entry.owner != msg.requester, (
                f"GETS from owner {msg.requester} addr {msg.addr}")
            rec = ServiceRecord(msg, "gets", self.sim.now, owner_path=True)
            self._block(entry, rec)
            fwd = Message(
                MessageType.FWD_GETS, msg.addr, self.node, entry.owner,
                requester=msg.requester, req_id=msg.req_id, tx=msg.tx,
                acks_expected=1, terminal=True,
            )
            self.network.send(fwd, extra_delay=self.config.directory_latency)

    def _finish_simple_gets(self, msg: Message, entry: DirEntry) -> None:
        entry.sharers |= 1 << msg.requester
        if msg.tx is not None:
            entry.tx_readers[msg.requester] = msg.tx.timestamp
        else:
            entry.tx_readers.pop(msg.requester, None)
        entry.state = DirState.S
        resp = Message(
            MessageType.DATA, msg.addr, self.node, msg.requester,
            requester=msg.requester, req_id=msg.req_id,
            value=entry.value, acks_expected=0,
        )
        self.network.send(resp)
        self._unblock(entry)

    # ------------------------------------------------------------------
    # GETX (and upgrades)
    # ------------------------------------------------------------------
    def _service_getx(self, msg: Message, entry: DirEntry) -> None:
        is_tx = msg.tx is not None
        if is_tx:
            self.stats.tx_getx_total += 1
        if entry.state is DirState.I:
            if is_tx:
                self.stats.tx_getx_granted += 1
            self._fetch_and_grant(msg, entry, exclusive=True)
            return
        if entry.state is DirState.M:
            assert entry.owner is not None and entry.owner != msg.requester, (
                f"GETX from owner {msg.requester} addr {msg.addr}")
            rec = ServiceRecord(msg, "getx", self.sim.now,
                                is_txgetx=is_tx, owner_path=True)
            self._block(entry, rec)
            fwd = Message(
                MessageType.FWD_GETX, msg.addr, self.node, entry.owner,
                requester=msg.requester, req_id=msg.req_id, tx=msg.tx,
                acks_expected=1, terminal=True, committing=msg.committing,
            )
            self.network.send(fwd, extra_delay=self.config.directory_latency)
            return

        # state S
        req_bit = 1 << msg.requester
        targets = bit_tuple(entry.sharers & ~req_bit)  # ascending ids
        was_sharer = bool(entry.sharers & req_bit)
        if not targets:
            # Requester is the sole sharer (or the list is empty):
            # grant immediately, blocking only for bank occupancy.
            if is_tx:
                self.stats.tx_getx_granted += 1
            self._block(entry, ServiceRecord(msg, "simple", self.sim.now))
            delay = self.config.directory_latency
            if not was_sharer:
                delay += self.config.l2_latency
            self.sim.call_later(delay, self._finish_sole_getx, msg, entry,
                              was_sharer)
            return

        # PUNO: try to unicast to the predicted highest-priority sharer.
        unicast_to: Optional[int] = None
        extra = self.config.directory_latency
        if self.puno is not None and is_tx:
            unicast_to = self.puno.predict_unicast(entry, msg, targets)
            extra += self.puno.predict_latency
        if unicast_to is not None:
            self.stats.puno_unicasts += 1
            rec = ServiceRecord(msg, "getx", self.sim.now, is_txgetx=is_tx,
                                unicast=True, requester_was_sharer=was_sharer,
                                targets=(unicast_to,))
            self._block(entry, rec)
            fwd = Message(
                MessageType.FWD_GETX, msg.addr, self.node, unicast_to,
                requester=msg.requester, req_id=msg.req_id, tx=msg.tx,
                acks_expected=1, terminal=True, u_bit=True,
            )
            self.network.send(fwd, extra_delay=extra)
            return

        if self.puno is not None and is_tx:
            self.stats.puno_multicasts += 1
        rec = ServiceRecord(msg, "getx", self.sim.now, is_txgetx=is_tx,
                            requester_was_sharer=was_sharer, targets=targets)
        self._block(entry, rec)
        k = len(targets)
        for i, t in enumerate(targets):
            fwd = Message(
                MessageType.FWD_GETX, msg.addr, self.node, t,
                requester=msg.requester, req_id=msg.req_id, tx=msg.tx,
                acks_expected=k, committing=msg.committing,
            )
            # One injection port: the i-th invalidation leaves one
            # flit-time after the previous — the serialization that
            # makes multicasts occupy the entry longer than unicasts
            # (the Fig. 12 effect).
            self.network.send(fwd, extra_delay=extra + i)
        # Grant header to the requester: data unless it still holds S.
        if was_sharer:
            grant = Message(
                MessageType.GRANT, msg.addr, self.node, msg.requester,
                requester=msg.requester, req_id=msg.req_id, acks_expected=k,
            )
            self.network.send(grant, extra_delay=extra)
        else:
            grant = Message(
                MessageType.DATA_EXCL, msg.addr, self.node, msg.requester,
                requester=msg.requester, req_id=msg.req_id,
                value=entry.value, acks_expected=k,
            )
            self.network.send(grant, extra_delay=extra + self.config.l2_latency)

    def _finish_sole_getx(self, msg: Message, entry: DirEntry,
                          was_sharer: bool) -> None:
        entry.sharers = 0
        entry.tx_readers.clear()
        if msg.tx is not None:
            # a transactional writer reads the line too (write implies
            # read permission); remember its epoch so a later downgrade
            # keeps it a valid unicast candidate
            entry.tx_readers[msg.requester] = msg.tx.timestamp
        entry.state = DirState.M
        entry.owner = msg.requester
        if was_sharer:
            resp = Message(
                MessageType.GRANT, msg.addr, self.node, msg.requester,
                requester=msg.requester, req_id=msg.req_id, acks_expected=0,
            )
        else:
            resp = Message(
                MessageType.DATA_EXCL, msg.addr, self.node, msg.requester,
                requester=msg.requester, req_id=msg.req_id,
                value=entry.value, acks_expected=0,
            )
        self.network.send(resp)
        self._unblock(entry)

    # ------------------------------------------------------------------
    # I-state fetch path (first touch pays memory latency)
    # ------------------------------------------------------------------
    def _fetch_and_grant(self, msg: Message, entry: DirEntry,
                         exclusive: bool) -> None:
        if entry.in_l2:
            delay = self.config.directory_latency + self.config.l2_latency
        else:
            delay = self.config.directory_latency + self.config.memory_latency
            self.stats.l2_misses += 1
        self._block(entry, ServiceRecord(msg, "fetch", self.sim.now))
        self.sim.call_later(delay, self._finish_fetch, msg, entry)

    def _finish_fetch(self, msg: Message, entry: DirEntry) -> None:
        entry.in_l2 = True
        # MESI: a GETS with no sharers is granted Exclusive, so both
        # GETS and GETX leave the entry in the owner state.
        entry.state = DirState.M
        entry.owner = msg.requester
        entry.sharers = 0
        entry.tx_readers.clear()
        if msg.tx is not None:
            entry.tx_readers[msg.requester] = msg.tx.timestamp
        resp = Message(
            MessageType.DATA_EXCL, msg.addr, self.node, msg.requester,
            requester=msg.requester, req_id=msg.req_id,
            value=entry.value, acks_expected=0,
        )
        self.network.send(resp)
        self._unblock(entry)

    # ------------------------------------------------------------------
    # PUT (writeback)
    # ------------------------------------------------------------------
    def _service_put(self, msg: Message, entry: DirEntry) -> None:
        self.stats.writebacks += 1
        if entry.state is DirState.M and entry.owner == msg.src:
            entry.value = msg.value
            entry.owner = None
            entry.in_l2 = True
            if msg.sticky:
                # Sticky-S: the evictor's transaction read this line;
                # keep it a sharer so forwards still reach it.
                entry.state = DirState.S
                entry.sharers = 1 << msg.src
                if msg.tx is not None:
                    readers = entry.tx_readers
                    readers.clear()
                    readers[msg.src] = msg.tx.timestamp
            else:
                entry.state = DirState.I
                entry.sharers = 0
                entry.tx_readers.clear()
        # else: stale writeback (ownership already moved on) — drop it.
        ack = make_put_ack(msg.addr, self.node, msg.src, msg.req_id)
        self.network.send(ack, extra_delay=self.config.directory_latency)
        # A non-sticky writeback settles the line to I with nothing
        # queued: retire the entry to the pool.  Skipped under the
        # sanitizer — its deferred line checks must still find the
        # entry after the event boundary.  When this PUT was drained
        # from an unblock loop, the loop's own retire attempt later is
        # an identity-checked no-op.
        if (self.san is None and entry.state is DirState.I
                and not entry.blocked and not entry.waitq):
            self.store.retire(msg.addr, entry)

    # ------------------------------------------------------------------
    # UNBLOCK / WB_DATA
    # ------------------------------------------------------------------
    def _handle_unblock(self, msg: Message) -> None:
        # The entry is blocked on this service, so it is necessarily
        # live: index the store internals directly.
        entry = self._live[self._slots[msg.addr]]
        rec = entry.service
        assert rec is not None and entry.blocked, f"spurious UNBLOCK {msg}"
        if (rec.kind == "gets" and rec.owner_path and msg.success
                and not rec.wb_received):
            # The owner's WB_DATA is still in flight.  Only reachable
            # under injected delay: the WB_DATA takes the direct
            # owner -> home leg while this UNBLOCK travelled
            # owner -> requester -> home, so by the triangle inequality
            # it cannot lose the race on a clean mesh.  Hold the
            # unblock until the downgrade value lands — reopening the
            # entry with the stale home copy would lose the owner's
            # last write.
            rec.deferred_unblock = msg
            return
        self._finish_unblock(msg, entry, rec)

    def _finish_unblock(self, msg: Message, entry: DirEntry,
                        rec: ServiceRecord) -> None:
        if rec.kind == "getx":
            if msg.success:
                entry.sharers = 0
                entry.tx_readers.clear()
                if rec.msg.tx is not None:
                    entry.tx_readers[msg.requester] = rec.msg.tx.timestamp
                entry.state = DirState.M
                entry.owner = msg.requester
            elif rec.owner_path or rec.unicast:
                pass  # nothing was invalidated; state stands
            else:
                # Multicast fail: nackers kept their copies, everyone
                # else invalidated; the (upgrading) requester keeps S.
                survivors = 0
                for n in msg.survivors:
                    survivors |= 1 << n
                if rec.requester_was_sharer:
                    survivors |= 1 << msg.requester
                entry.sharers = survivors
                readers = entry.tx_readers
                if readers:
                    for n in [n for n in readers
                              if not (survivors >> n) & 1]:
                        del readers[n]
                entry.state = DirState.S if survivors else DirState.I
        elif rec.kind == "gets":
            if msg.success:
                old_owner = entry.owner
                entry.state = DirState.S
                entry.owner = None
                entry.sharers = (1 << old_owner) | (1 << msg.requester)
                # keep the downgraded owner's reader epoch (it read the
                # line under its current transaction), add the requester
                readers = entry.tx_readers
                if readers:
                    owner_ts = readers.get(old_owner)
                    readers.clear()
                    if owner_ts is not None:
                        readers[old_owner] = owner_ts
                if rec.msg.tx is not None:
                    readers[msg.requester] = rec.msg.tx.timestamp
            # fail: owner nacked and keeps M; state stands.
        else:  # pragma: no cover - protocol bug guard
            raise AssertionError(f"UNBLOCK for {rec.kind} service")

        if self.puno is not None:
            if msg.mp_bit and msg.mp_node >= 0:
                self.puno.feedback_mispredict(msg.mp_node)
                if self.san is not None:
                    self.san.check_mp_feedback(self.puno, msg.mp_node)
            self.puno.after_service(entry)
        if self.san is not None:
            # Line state is settled here (requester installed before
            # sending UNBLOCK); the check itself runs at the event
            # boundary after the wait queue drains.
            self.san.queue_line_check(self, msg.addr)
        self._unblock(entry)

    def _handle_wb_data(self, msg: Message) -> None:
        # Owner-supplied data on an M -> S downgrade.  On the mesh this
        # always lands while the entry is still blocked on the request
        # that triggered it (the requester's UNBLOCK takes the longer
        # two-leg path, so by the triangle inequality it cannot arrive
        # first); a mismatch is only reachable under injected delay and
        # means the line has moved on — applying the payload would
        # overwrite a fresher value with a stale one.
        entry = self.entry(msg.addr)
        rec = entry.service
        if (rec is None or rec.msg.req_id != msg.req_id
                or rec.msg.src != msg.requester):
            return
        entry.value = msg.value
        entry.in_l2 = True
        rec.wb_received = True
        if rec.deferred_unblock is not None:
            # The requester's UNBLOCK beat us here (injected delay);
            # the downgrade value is now home, so complete it.
            self._finish_unblock(rec.deferred_unblock, entry, rec)

    # ------------------------------------------------------------------
    # blocking machinery
    # ------------------------------------------------------------------
    def _block(self, entry: DirEntry, rec: ServiceRecord) -> None:
        assert not entry.blocked
        entry.blocked = True
        entry.service = rec
        self.stats.dir_blocked_events += 1

    def _unblock(self, entry: DirEntry) -> None:
        rec = entry.service
        assert rec is not None
        addr = rec.msg.addr
        blocked_for = self.sim.now - rec.block_start
        self.stats.dir_blocked_cycles_total += blocked_for
        if rec.is_txgetx:
            self.stats.dir_blocked_cycles_txgetx += blocked_for
        entry.blocked = False
        entry.service = None
        if self.puno is not None and rec.kind != "fetch":
            self.puno.after_service(entry)
        # Drain the wait queue until a service blocks the entry again
        # (some services, e.g. PUT, complete without blocking).  A
        # scheme arbiter, when present, picks which waiter goes next;
        # FIFO schemes keep the bare popleft.
        arb = self.arbiter
        while entry.waitq and not entry.blocked:
            if arb is None:
                nxt, arrived = entry.waitq.popleft()
            else:
                nxt, arrived = arb.select(entry.waitq, self.sim.now)
            self.stats.dir_queue_wait_cycles += self.sim.now - arrived
            self._service(nxt, entry)
        # Settled back to I with nothing queued (e.g. a multicast fail
        # with no survivors): retire to the pool.  See _service_put for
        # the sanitizer gate; the identity check inside retire makes
        # this a no-op if a drained PUT already retired it.
        if (self.san is None and not entry.blocked and not entry.waitq
                and entry.state is DirState.I):
            self.store.retire(addr, entry)
