"""MESI directory-coherence substrate.

This package reimplements, from scratch, the coherence machinery the
paper piggybacks HTM conflict detection onto: private write-back L1s,
a shared static-NUCA L2 whose banks double as home-node directories
(SGI-Origin-style blocking directory), and the full
GETS/GETX/forward/NACK/ACK/DATA/UNBLOCK message choreography.
"""

from repro.coherence.states import L1State, DirState
from repro.coherence.cache import CacheLine, L1Cache
from repro.coherence.directory import DirectoryController, DirEntry

__all__ = [
    "L1State",
    "DirState",
    "CacheLine",
    "L1Cache",
    "DirectoryController",
    "DirEntry",
]
