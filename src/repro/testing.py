"""Testing utilities for driving protocol components in isolation.

Shipped as part of the package so downstream users can unit-test
protocol extensions the same way the bundled test suite does.  Two
layers:

* :class:`RecordingNetwork` — a network stand-in for choreography
  tests of a single directory or node controller;
* the **cross-scheme conformance harness**
  (:func:`run_scheme_conformance` / :func:`conformance_matrix`) — runs
  a registered scheme through sanitized paper-16 smoke cells and
  checks the invariants every scheme must share, whatever its
  policies: the run completes, the sanitizer actually checked it,
  single-owner and directory/sharer agreement hold (coherence audit),
  memory equals committed increments (value audit), no transaction
  outcome is lost (attempts = commits + aborts, every instance
  commits exactly once), and the whole run replays bit-identically
  from the same seed.  ``tests/test_scheme_conformance.py`` drives it
  over every registered scheme; downstream plug-ins get the same
  contract by calling it with their own scheme name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.message import Message
from repro.sim.engine import Simulator
from repro.sim.stats import Stats


class RecordingNetwork:
    """Network stand-in that records sends instead of delivering.

    Drives a :class:`~repro.coherence.directory.DirectoryController` or
    :class:`~repro.htm.node.NodeController` in isolation: the test
    inspects ``sent`` and feeds responses back by hand, so it can
    assert on the exact message choreography of each protocol flow.
    """

    def __init__(self, sim: Simulator, stats: Stats):
        self.sim = sim
        self.stats = stats
        self.sent: List[Message] = []

    def send(self, msg: Message, extra_delay: int = 0) -> None:
        # same int-indexed accumulation as the real Network
        self.stats._msg_counts[msg.mtype] += 1
        self.sent.append(msg)

    def pop(self, mtype=None) -> Message:
        """Remove and return the first sent message (of a type)."""
        for i, m in enumerate(self.sent):
            if mtype is None or m.mtype is mtype:
                return self.sent.pop(i)
        raise AssertionError(f"no sent message of type {mtype}; "
                             f"have {self.sent}")

    def of_type(self, mtype) -> List[Message]:
        return [m for m in self.sent if m.mtype is mtype]

    def clear(self) -> None:
        self.sent.clear()


# =====================================================================
# cross-scheme conformance harness
# =====================================================================

#: The conformance envelope mirrors the paper-16 smoke matrix: same
#: mesh, same instance scale; workloads default to the smoke subset of
#: the registered ``paper-16`` scenario.
CONFORMANCE_NODES = 16
CONFORMANCE_SCALE = 0.1
CONFORMANCE_SEED = 0
CONFORMANCE_MAX_CYCLES = 200_000_000


@dataclass
class ConformanceReport:
    """Outcome of one scheme x workload conformance cell."""

    scheme: str
    workload: str
    nodes: int
    seed: int
    digest: str = ""
    replay_digest: str = ""
    sanitizer_checks: int = 0
    commits: int = 0
    aborts: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        head = (f"{self.scheme}/{self.workload}: "
                f"{self.commits} commits, {self.aborts} aborts, "
                f"{self.sanitizer_checks} sanitizer checks")
        if self.ok:
            return f"{head} — CONFORMS"
        return "\n".join([f"{head} — FAILED"]
                         + [f"  - {f}" for f in self.failures])


def build_conformance_system(scheme: str, workload: str,
                             nodes: int = CONFORMANCE_NODES,
                             scale: float = CONFORMANCE_SCALE,
                             seed: int = CONFORMANCE_SEED):
    """One sanitized, watchdogged System for a conformance cell.

    PUNO enablement follows the scheme registry, so the cell config is
    exactly what scenario/tournament runs would build for the scheme.
    """
    from repro.schemes import get_scheme
    from repro.sim.config import scaled_config
    from repro.system import System
    from repro.workloads.stamp import make_stamp_workload
    cfg = scaled_config(nodes, seed=seed + 1)
    if get_scheme(scheme).needs_puno:
        cfg = cfg.with_puno()
    wl = make_stamp_workload(workload, num_nodes=nodes, scale=scale,
                             seed=seed)
    return System(cfg, wl, scheme, sanitize=True, watchdog=True)


def _check_outcome_conservation(system, report: ConformanceReport) -> None:
    """No lost aborts / no double commits, per node.

    Every attempt ends in exactly one outcome (attempts = commits +
    aborts) and every TxInstance in the node's program commits exactly
    once — a scheme that drops a waiter, loses an abort, or replays a
    committed instance breaks one of these whatever else it changes.
    """
    from repro.workloads.base import TxInstance
    stats = system.stats
    for n in range(system.config.num_nodes):
        node = stats.nodes[n]
        if node.tx_attempts != node.tx_committed + node.tx_aborted:
            report.failures.append(
                f"node {n}: lost outcome — {node.tx_attempts} attempts "
                f"!= {node.tx_committed} commits + {node.tx_aborted} "
                f"aborts")
        expected = sum(1 for item in system.workload.programs[n]
                       if isinstance(item, TxInstance))
        if node.tx_committed != expected:
            report.failures.append(
                f"node {n}: {node.tx_committed} commits for "
                f"{expected} program instance(s)")


def run_scheme_conformance(scheme: str, workload: str = "intruder",
                           nodes: int = CONFORMANCE_NODES,
                           scale: float = CONFORMANCE_SCALE,
                           seed: int = CONFORMANCE_SEED,
                           max_cycles: int = CONFORMANCE_MAX_CYCLES,
                           replay: bool = True) -> ConformanceReport:
    """Run one scheme through one sanitized cell and check the shared
    protocol invariants (see module docstring).

    ``replay=True`` runs the cell twice from scratch and requires
    bit-identical canonical snapshot digests — the determinism
    contract that catches any scheme drawing entropy outside its
    seeded RNG stream.
    """
    from repro.sim.watchdog import StallError
    report = ConformanceReport(scheme=scheme, workload=workload,
                               nodes=nodes, seed=seed)
    system = build_conformance_system(scheme, workload, nodes, scale,
                                      seed)
    try:
        # run() already audits coherence (single-owner + dir/sharer
        # agreement) and values (atomicity) on completion; the
        # sanitizer checks its nine invariants at event boundaries.
        system.run(max_cycles=max_cycles)
    except StallError as exc:
        report.failures.append(f"stalled: {exc.report.kind} at cycle "
                               f"{exc.report.cycle}: {exc.report.detail}")
        return report
    except (AssertionError, RuntimeError) as exc:
        report.failures.append(f"{type(exc).__name__}: {exc}")
        return report
    stats = system.stats
    report.digest = stats.snapshot_digest()
    report.sanitizer_checks = stats.sanitizer_checks
    report.commits = stats.tx_committed
    report.aborts = stats.tx_aborted
    if stats.sanitizer_checks <= 0:
        report.failures.append("sanitizer armed but performed no checks")
    if stats.tx_committed <= 0:
        report.failures.append("run completed without any commit")
    _check_outcome_conservation(system, report)
    if replay:
        replay_system = build_conformance_system(scheme, workload,
                                                 nodes, scale, seed)
        try:
            replay_system.run(max_cycles=max_cycles)
        except (AssertionError, RuntimeError) as exc:
            report.failures.append(
                f"replay failed: {type(exc).__name__}: {exc}")
            return report
        report.replay_digest = replay_system.stats.snapshot_digest()
        if report.replay_digest != report.digest:
            report.failures.append(
                f"nondeterministic replay: {report.digest[:16]}… vs "
                f"{report.replay_digest[:16]}…")
    return report


def conformance_workloads() -> Tuple[str, ...]:
    """The paper-16 smoke workload labels (the conformance matrix's
    workload axis)."""
    from repro.scenarios.registry import get_scenario
    spec = get_scenario("paper-16").smoke()
    return tuple(wl.label for wl in spec.workloads)


def conformance_matrix(schemes: Optional[Tuple[str, ...]] = None,
                       workloads: Optional[Tuple[str, ...]] = None,
                       replay_workload: Optional[str] = None,
                       ) -> Dict[Tuple[str, str], ConformanceReport]:
    """Run every (scheme, workload) conformance cell.

    Defaults to every registered scheme over the paper-16 smoke
    workloads.  The replay (determinism) check runs on one workload
    per scheme — the first, or ``replay_workload`` — since a second
    full matrix would double the cost for no extra invariant.
    """
    from repro.schemes import scheme_names
    if schemes is None:
        schemes = scheme_names()
    if workloads is None:
        workloads = conformance_workloads()
    if replay_workload is None:
        replay_workload = workloads[0]
    out: Dict[Tuple[str, str], ConformanceReport] = {}
    for scheme in schemes:
        for workload in workloads:
            out[(scheme, workload)] = run_scheme_conformance(
                scheme, workload, replay=(workload == replay_workload))
    return out
