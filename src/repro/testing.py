"""Testing utilities for driving protocol components in isolation.

Shipped as part of the package so downstream users can unit-test
protocol extensions the same way the bundled test suite does.
"""

from __future__ import annotations

from typing import List

from repro.network.message import Message
from repro.sim.engine import Simulator
from repro.sim.stats import Stats


class RecordingNetwork:
    """Network stand-in that records sends instead of delivering.

    Drives a :class:`~repro.coherence.directory.DirectoryController` or
    :class:`~repro.htm.node.NodeController` in isolation: the test
    inspects ``sent`` and feeds responses back by hand, so it can
    assert on the exact message choreography of each protocol flow.
    """

    def __init__(self, sim: Simulator, stats: Stats):
        self.sim = sim
        self.stats = stats
        self.sent: List[Message] = []

    def send(self, msg: Message, extra_delay: int = 0) -> None:
        # same int-indexed accumulation as the real Network
        self.stats._msg_counts[msg.mtype] += 1
        self.sent.append(msg)

    def pop(self, mtype=None) -> Message:
        """Remove and return the first sent message (of a type)."""
        for i, m in enumerate(self.sent):
            if mtype is None or m.mtype is mtype:
                return self.sent.pop(i)
        raise AssertionError(f"no sent message of type {mtype}; "
                             f"have {self.sent}")

    def of_type(self, mtype) -> List[Message]:
        return [m for m in self.sent if m.mtype is mtype]

    def clear(self) -> None:
        self.sent.clear()
