"""Deterministic coherence-fault injection (Level 1 of the robustness
subsystem; see DESIGN.md §8).

:class:`FaultConfig` describes a seeded injection campaign (drop /
duplicate / delay / reorder rates, globally, per message type or per
(src, dst) pair, plus periodic node stalls); :class:`FaultInjector`
applies it by wrapping ``Network.send``.  Pair with the engine
watchdog (:mod:`repro.sim.watchdog`) so wedged runs surface as
structured :class:`~repro.sim.watchdog.StallReport` objects instead of
burning events forever.
"""

from repro.faults.injector import (
    DUP_SAFE_TYPES,
    FAULT_KINDS,
    RESPONSE_TYPES,
    FaultConfig,
    FaultInjector,
    chaos_profile,
    parse_fault_spec,
)

__all__ = [
    "DUP_SAFE_TYPES",
    "FAULT_KINDS",
    "RESPONSE_TYPES",
    "FaultConfig",
    "FaultInjector",
    "chaos_profile",
    "parse_fault_spec",
]
