"""Deterministic, seeded coherence-message fault injection.

The :class:`FaultInjector` wraps ``Network.send`` — the same attach
point the protocol sanitizer uses to swap ``_send_fast``/``_send_full``
— and perturbs the message stream with four fault kinds:

* **drop** — the message is never delivered.  The protocol has no
  retransmission layer, so sustained drops are expected to wedge a run;
  the engine watchdog (:mod:`repro.sim.watchdog`) turns that wedge into
  a structured :class:`~repro.sim.watchdog.StallReport`.
* **duplicate** — the message is delivered twice (the copy slightly
  skewed in time).  Applied by default only to non-counting response
  types (DATA/DATA_EXCL/GRANT/PUT_ACK): duplicated requests violate
  assumptions a real interconnect also guarantees (a blocking directory
  never sees the same request twice), and duplicated ACK/NACK inflate
  the requester's multicast completion count — both would test the
  fault model, not the protocol.  Explicit ``per_type`` overrides are
  honored verbatim for experiments that want exactly that.
* **delay** — extra delivery latency drawn from
  ``[delay_min, delay_max]``.  Modeled as *congestion*: a delayed
  message raises a per-(src, dst) arrival floor so no later message on
  the pair can overtake it.  The directory protocol (like the mesh it
  abstracts) relies on point-to-point FIFO delivery — e.g. a FWD_GETX
  must not arrive at an ex-owner behind the PUT_ACK that released its
  writeback buffer — so a FIFO-preserving delay is always
  correctness-safe while a naive per-message jitter is not
  (deliberate FIFO violation is what ``reorder`` is for).
* **reorder** — hold one message per (src, dst) pair and release it
  behind the next message on that pair (or after ``reorder_window``
  cycles, whichever comes first), swapping their order.  Restricted to
  response types by default for the same reason as duplication.

plus **node stalls**: every ``stall_interval`` cycles a seeded victim
node "freezes" for ``stall_duration`` cycles — deliveries that would
arrive inside the freeze window are pushed past its end (a pure delay,
so always correctness-safe).

Determinism: all decisions draw from one named
:class:`~repro.sim.rng.RngFactory` stream (``"faults"``) seeded by
``FaultConfig.seed``, independent of the simulator's own streams — the
same config on the same workload perturbs the run identically.  With
every rate at 0.0 the injector does not install its wrapper at all, so
a zero-rate run is bit-identical to a plain run by construction (and
the property test also force-installs the wrapper to prove it is
transparent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.network.message import Message, MessageType
from repro.sim.rng import RngFactory

FAULT_KINDS = ("drop", "duplicate", "delay", "reorder")

# Types that are safe to perturb by default: responses feed a
# requester's MSHR (stale copies are detected and dropped there) or are
# idempotent acknowledgments.  Requests and UNBLOCK mutate blocking
# directory state and are delivered exactly-once by construction.
RESPONSE_TYPES = frozenset({
    MessageType.DATA, MessageType.DATA_EXCL, MessageType.GRANT,
    MessageType.ACK, MessageType.NACK, MessageType.PUT_ACK,
})

# ACK/NACK are *counting* messages: the requester completes a multicast
# GETX when acks + nacks reach the expected count, so a duplicate
# inflates the tally and lets the requester finish before every sharer
# actually invalidated (a real dir-sharers mismatch, not a tolerable
# stale response).  Reordering them is still safe — the count is
# order-insensitive — so only duplication gets the narrower set.
DUP_SAFE_TYPES = RESPONSE_TYPES - {MessageType.ACK, MessageType.NACK}


@dataclass(frozen=True)
class FaultConfig:
    """Rates and shape parameters for one injection campaign.

    ``per_type`` entries are ``(MessageType name, kind, rate)`` and
    override the global rate for that type; ``per_pair`` entries are
    ``(src, dst, kind, rate)`` and override the per-type value for that
    directed pair.  Tuples (not dicts) keep the config hashable and
    picklable across sweep workers.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    delay_min: int = 1
    delay_max: int = 64
    dup_skew: int = 8
    reorder_window: int = 128
    per_type: Tuple[Tuple[str, str, float], ...] = ()
    per_pair: Tuple[Tuple[int, int, str, float], ...] = ()
    stall_interval: int = 0
    stall_duration: int = 0

    def active(self) -> bool:
        """True when any fault can actually fire."""
        if self.drop or self.duplicate or self.delay or self.reorder:
            return True
        if any(rate for _, _, rate in self.per_type):
            return True
        if any(rate for _, _, _, rate in self.per_pair):
            return True
        return self.stall_interval > 0 and self.stall_duration > 0

    def validate(self) -> None:
        for name, kind, _ in self.per_type:
            if name not in MessageType.__members__:
                raise ValueError(f"unknown message type {name!r} in per_type")
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in per_type")
        for _, _, kind, _ in self.per_pair:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in per_pair")
        for rate in (self.drop, self.duplicate, self.delay, self.reorder):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {rate} outside [0, 1]")


def chaos_profile(drop: float = 0.0, duplicate: float = 0.0,
                  delay: float = 0.0, reorder: float = 0.0,
                  seed: int = 0, delay_max: int = 64,
                  stall_interval: int = 0,
                  stall_duration: int = 0) -> FaultConfig:
    """The standard chaos-tour profile (used by ``repro chaos``/CI)."""
    cfg = FaultConfig(seed=seed, drop=drop, duplicate=duplicate,
                      delay=delay, reorder=reorder, delay_max=delay_max,
                      stall_interval=stall_interval,
                      stall_duration=stall_duration)
    cfg.validate()
    return cfg


_SPEC_ALIASES = {
    "dup": "duplicate",
    "drop": "drop",
    "duplicate": "duplicate",
    "delay": "delay",
    "reorder": "reorder",
    "seed": "seed",
    "delay_min": "delay_min",
    "delay_max": "delay_max",
    "dup_skew": "dup_skew",
    "reorder_window": "reorder_window",
    "stall_interval": "stall_interval",
    "stall_duration": "stall_duration",
}

_INT_FIELDS = frozenset({"seed", "delay_min", "delay_max", "dup_skew",
                         "reorder_window", "stall_interval",
                         "stall_duration"})


def parse_fault_spec(spec: str) -> FaultConfig:
    """Parse a ``--faults`` CLI spec like ``drop=0.01,dup=0.005,seed=7``."""
    kwargs: Dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad fault spec item {part!r} "
                             f"(expected key=value)")
        key, _, value = part.partition("=")
        field = _SPEC_ALIASES.get(key.strip())
        if field is None:
            raise ValueError(f"unknown fault spec key {key.strip()!r}; "
                             f"choices: {sorted(_SPEC_ALIASES)}")
        kwargs[field] = (int(value) if field in _INT_FIELDS
                         else float(value))
    cfg = FaultConfig(**kwargs)
    cfg.validate()
    return cfg


class FaultInjector:
    """Wraps ``Network.send`` with seeded fault decisions."""

    def __init__(self, config: FaultConfig, num_nodes: int):
        config.validate()
        self.config = config
        self.num_nodes = num_nodes
        self._rng = RngFactory(config.seed).stream("faults")
        # effective per-type rate table: global rates (duplicate and
        # reorder clamped to response types), then per_type overrides
        rates: Dict[MessageType, Tuple[float, float, float, float]] = {}
        for t in MessageType:
            rates[t] = (config.drop,
                        config.duplicate if t in DUP_SAFE_TYPES else 0.0,
                        config.delay,
                        config.reorder if t in RESPONSE_TYPES else 0.0)
        for name, kind, rate in config.per_type:
            t = MessageType[name]
            row = list(rates[t])
            row[FAULT_KINDS.index(kind)] = rate
            rates[t] = tuple(row)
        self._rates = rates
        self._pair_over: Dict[Tuple[int, int], Dict[str, float]] = {}
        for src, dst, kind, rate in config.per_pair:
            self._pair_over.setdefault((src, dst), {})[kind] = rate
        # fault log counters
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.stalls_injected = 0
        # wiring (filled by attach)
        self.sim = None
        self._inner = None
        self._mesh_lat = None
        self._n = 0
        self._held: Dict[Tuple[int, int], Tuple[Message, int, object]] = {}
        # per-(src, dst) arrival floor: injected lateness that later
        # messages on the pair must not undercut (FIFO preservation)
        self._fifo_floor: Dict[Tuple[int, int], int] = {}
        self._stalled_until: Dict[int, int] = {}
        self._stall_ev = None
        self._attached = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, system, force: bool = False) -> None:
        """Install the send wrapper on ``system``'s network.

        With no active fault (all rates zero) the wrapper is not
        installed at all unless ``force`` is given, so a zero-rate
        config costs nothing and perturbs nothing.  Must run *after*
        sanitizer attachment: the wrapper captures whichever send
        implementation (fast or checked) is current.
        """
        if self._attached:
            raise RuntimeError("FaultInjector is already attached")
        self._attached = True
        self.sim = system.sim
        net = system.network
        self._inner = net.send
        self._mesh_lat = net._mesh_lat
        self._n = net._n
        if not (self.config.active() or force):
            return
        net.send = self.send
        for node in system.nodes:
            # injected duplicates/delays can surface responses for
            # already-completed requests; nodes tolerate + count them
            node.fault_tolerant = True
        if self.config.stall_interval > 0 and self.config.stall_duration > 0:
            self._stall_ev = self.sim.schedule(
                self.config.stall_interval, self._inject_stall)

    def stop(self) -> None:
        """Cancel the recurring stall timer (workload finished)."""
        if self._stall_ev is not None:
            self._stall_ev.cancel()
            self._stall_ev = None

    # ------------------------------------------------------------------
    # the wrapped send
    # ------------------------------------------------------------------
    def send(self, msg: Message, extra_delay: int = 0) -> None:
        drop, dup, delay, reorder = self._rates[msg.mtype]
        if self._pair_over:
            over = self._pair_over.get((msg.src, msg.dst))
            if over is not None:
                drop = over.get("drop", drop)
                dup = over.get("duplicate", dup)
                delay = over.get("delay", delay)
                reorder = over.get("reorder", reorder)
        rng = self._rng
        key = (msg.src, msg.dst)
        if drop > 0.0 and rng.random() < drop:
            self.dropped += 1
            self._release_held(key)
            return
        jitter = 0
        if delay > 0.0 and rng.random() < delay:
            jitter = rng.randint(self.config.delay_min,
                                 self.config.delay_max)
            self.delayed += 1
        if self._stalled_until:
            jitter += self._stall_penalty(msg, extra_delay + jitter)
        jitter = self._fifo_clamp(key, extra_delay, jitter)
        if reorder > 0.0 and key not in self._held and rng.random() < reorder:
            # hold this message; the next send on the pair (or the
            # window flush) releases it behind whatever overtook it
            flush = self.sim.schedule(self.config.reorder_window,
                                      self._flush_held, key)
            self._held[key] = (msg, extra_delay + jitter, flush)
            self.reordered += 1
            return
        self._inner(msg, extra_delay + jitter)
        if dup > 0.0 and rng.random() < dup:
            self.duplicated += 1
            self._inner(msg, extra_delay + jitter + 1
                        + rng.randint(0, self.config.dup_skew))
        self._release_held(key)

    # ------------------------------------------------------------------
    # FIFO preservation for injected lateness
    # ------------------------------------------------------------------
    def _fifo_clamp(self, key: Tuple[int, int], extra_delay: int,
                    jitter: int) -> int:
        """Keep injected lateness FIFO: a message must not arrive on
        its (src, dst) pair before an earlier message we made late.

        Pairs with no injected lateness yet are left untouched (no
        floor entry), so a jitter-free run through the wrapper is
        bit-identical to a plain run.
        """
        naive = (self.sim.now + extra_delay + jitter
                 + self._mesh_lat[key[0] * self._n + key[1]])
        floor = self._fifo_floor.get(key)
        if floor is not None and naive < floor:
            jitter += floor - naive
            naive = floor
        if jitter > 0:
            self._fifo_floor[key] = naive
        return jitter

    # ------------------------------------------------------------------
    # reorder bookkeeping
    # ------------------------------------------------------------------
    def _release_held(self, key: Tuple[int, int]) -> None:
        if not self._held:
            return
        held = self._held.pop(key, None)
        if held is None:
            return
        msg, extra, flush = held
        flush.cancel()
        self._inner(msg, extra)

    def _flush_held(self, key: Tuple[int, int]) -> None:
        held = self._held.pop(key, None)
        if held is None:
            return
        msg, extra, _ = held
        self._inner(msg, extra)

    # ------------------------------------------------------------------
    # node stalls
    # ------------------------------------------------------------------
    def _inject_stall(self) -> None:
        victim = self._rng.randrange(self.num_nodes)
        until = self.sim.now + self.config.stall_duration
        if self._stalled_until.get(victim, 0) < until:
            self._stalled_until[victim] = until
        self.stalls_injected += 1
        self._stall_ev = self.sim.schedule(self.config.stall_interval,
                                           self._inject_stall)

    def _stall_penalty(self, msg: Message, base_delay: int) -> int:
        until = self._stalled_until.get(msg.dst)
        if until is None:
            return 0
        arrival = (self.sim.now + base_delay
                   + self._mesh_lat[msg.src * self._n + msg.dst])
        if arrival >= until:
            del self._stalled_until[msg.dst]
            return 0
        return until - arrival

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return (self.dropped + self.duplicated + self.delayed
                + self.reordered + self.stalls_injected)

    def summary(self) -> Dict[str, int]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "stalls_injected": self.stalls_injected,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in self.summary().items())
        return f"FaultInjector({parts})"
