"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``describe`` — print the simulated machine configuration (Table II).
* ``run`` — simulate one workload under one scheme and print stats.
* ``compare`` — run one workload under several schemes, normalized.
* ``experiment`` — regenerate one paper table/figure by name.
* ``workloads`` — list the available workloads and their parameters.
* ``area`` — print the PUNO area/power estimate (Table III).
* ``lint`` — run the simulator-specific static analysis suite.
* ``profile`` — run one cell under cProfile with per-event-callback
  and per-message-type accounting.
* ``chaos`` — run workloads under injected coherence faults with the
  engine watchdog armed; exit 0 iff every cell commits or stalls in a
  fault-explained way.
* ``scenario`` — list / validate / run declarative experiment
  scenarios (``repro scenario run <name>`` executes the full
  workload x scheme x seed matrix through the resilient sweep
  machinery; ``--smoke`` runs the scaled-down variant).
* ``golden`` — run the golden-run regression tour and compare its
  canonical snapshot digests against ``tests/golden/golden.json``
  (``--update`` re-pins after an intentional behaviour change;
  ``--scale`` / ``--tournament`` cover the scale and scheme sections).
* ``tournament`` — sweep every registered protocol scheme
  (``repro.schemes``) head-to-head against PUNO on the 16-node
  tournament matrix.

``run``/``compare``/``experiment`` accept ``--sanitize`` to enable the
dynamic protocol sanitizer (equivalent to ``REPRO_SANITIZE=1``).
``compare``/``experiment`` accept ``--resume`` to checkpoint completed
sweep cells on disk (``REPRO_SWEEP_CHECKPOINT``) so an interrupted
grid picks up where it left off.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.analysis import experiments as experiments_mod
from repro.analysis.report import render_table
from repro.core.hw_model import estimate_overhead
from repro.sim.config import SystemConfig
from repro.schemes import get_scheme, scheme_names
from repro.system import run_workload
from repro.workloads.stamp import STAMP_WORKLOADS, make_stamp_workload
from repro.workloads.synthetic import make_synthetic_workload

#: Every registered protocol scheme (repro.schemes) — the choice set
#: for run/compare/profile/chaos and the tournament axis.
SCHEMES = scheme_names()

EXPERIMENTS = {
    "table1": lambda a: experiments_mod.table1(a.scale, a.seed,
                                               jobs=a.jobs),
    "table2": lambda a: experiments_mod.table2(),
    "table3": lambda a: experiments_mod.table3(),
    "fig2": lambda a: experiments_mod.fig2(a.scale, a.seed, jobs=a.jobs),
    "fig3": lambda a: experiments_mod.fig3(a.scale, a.seed, jobs=a.jobs),
    "fig10": lambda a: experiments_mod.fig10(a.scale, a.seed,
                                             jobs=a.jobs),
    "fig11": lambda a: experiments_mod.fig11(a.scale, a.seed,
                                             jobs=a.jobs),
    "fig12": lambda a: experiments_mod.fig12(a.scale, a.seed,
                                             jobs=a.jobs),
    "fig13": lambda a: experiments_mod.fig13(a.scale, a.seed,
                                             jobs=a.jobs),
    "fig14": lambda a: experiments_mod.fig14(a.scale, a.seed,
                                             jobs=a.jobs),
}


def _make_workload(args):
    if args.workload == "synthetic":
        return make_synthetic_workload(
            num_nodes=args.nodes, instances=args.instances,
            shared_lines=args.shared_lines, tx_reads=args.tx_reads,
            tx_writes=args.tx_writes, seed=args.seed)
    return make_stamp_workload(args.workload, num_nodes=args.nodes,
                               scale=args.scale, seed=args.seed)


def _make_spec(args):
    """The picklable WorkloadSpec equivalent of :func:`_make_workload`."""
    from repro.analysis.parallel import WorkloadSpec
    if args.workload == "synthetic":
        return WorkloadSpec(
            "synthetic", kind="synthetic", num_nodes=args.nodes,
            seed=args.seed,
            params=(("instances", args.instances),
                    ("shared_lines", args.shared_lines),
                    ("tx_reads", args.tx_reads),
                    ("tx_writes", args.tx_writes)))
    return WorkloadSpec(args.workload, num_nodes=args.nodes,
                        scale=args.scale, seed=args.seed)


def _apply_cache_flag(args) -> None:
    """``--no-cache`` disables the result cache for the whole process
    (including sweep worker processes, which inherit the environment)."""
    import os
    if getattr(args, "no_cache", False):
        os.environ["REPRO_NO_CACHE"] = "1"


def _apply_sanitize_flag(args) -> None:
    """``--sanitize`` enables the dynamic protocol sanitizer for the
    whole process, sweep workers included (same env-flag mechanism)."""
    import os
    if getattr(args, "sanitize", False):
        os.environ["REPRO_SANITIZE"] = "1"


def _apply_resume_flag(args) -> None:
    """``--resume`` turns on sweep checkpointing for the process (the
    same ``REPRO_SWEEP_CHECKPOINT`` env var the sweeps consult), so
    completed cells persist and a rerun only computes missing ones."""
    import os
    if getattr(args, "resume", False):
        os.environ["REPRO_SWEEP_CHECKPOINT"] = args.checkpoint_dir


def _make_faults(args):
    """Build a FaultConfig from ``--faults`` / chaos rate flags, or
    None when every rate is zero (so plain runs stay untouched)."""
    from repro.faults import FaultConfig, chaos_profile, parse_fault_spec
    if getattr(args, "faults", None):
        cfg = parse_fault_spec(args.faults)
    else:
        cfg = chaos_profile(
            drop=getattr(args, "drop", 0.0),
            duplicate=getattr(args, "dup", 0.0),
            delay=getattr(args, "delay", 0.0),
            reorder=getattr(args, "reorder", 0.0),
            seed=getattr(args, "fault_seed", 0),
            delay_max=getattr(args, "delay_max", 64),
            stall_interval=getattr(args, "stall_interval", 0),
            stall_duration=getattr(args, "stall_duration", 0))
    cfg.validate()
    return cfg if cfg.active() else None


def _make_config(args, scheme: str) -> SystemConfig:
    cfg = SystemConfig(seed=args.seed) if args.nodes == 16 else None
    if cfg is None:
        from repro.sim.config import small_config
        cfg = small_config(args.nodes, seed=args.seed)
    if get_scheme(scheme).needs_puno:
        cfg = cfg.with_puno()
    return cfg


def _stats_row(scheme: str, stats) -> Dict[str, object]:
    return {
        "scheme": scheme,
        "commits": stats.tx_committed,
        "aborts": stats.tx_aborted,
        "abort %": round(100 * stats.abort_rate(), 1),
        "traffic": stats.flit_router_traversals,
        "exec cycles": stats.execution_cycles,
        "gd": round(stats.gd_ratio(), 2),
    }


# ---------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------

def cmd_describe(args) -> int:
    print(SystemConfig().describe())
    return 0


def cmd_workloads(args) -> int:
    rows = []
    for name, meta in STAMP_WORKLOADS.items():
        rows.append({
            "name": name,
            "paper input": meta.paper_input,
            "paper abort %": meta.paper_abort_pct,
            "high contention": "yes" if meta.high_contention else "no",
        })
    rows.append({"name": "synthetic", "paper input": "(parametric)",
                 "paper abort %": "-", "high contention": "-"})
    print(render_table(rows, title="Available workloads"))
    return 0


def cmd_run(args) -> int:
    _apply_sanitize_flag(args)
    wl = _make_workload(args)
    cfg = _make_config(args, args.scheme)
    tracer = None
    if args.trace:
        from repro.sim.trace import Tracer
        tracer = Tracer()
    faults = _make_faults(args) if getattr(args, "faults", None) else None
    from repro.analysis.chaos import audits_safe
    from repro.system import StallError, System
    system = System(cfg, wl, args.scheme, trace=tracer,
                    faults=faults, watchdog=faults is not None)
    try:
        result = system.run(max_cycles=args.max_cycles,
                            audit=audits_safe(faults))
    except StallError as exc:
        print(exc.report.describe(), file=sys.stderr)
        return 1
    finally:
        if faults is not None:
            inj = system.fault_injector
            print(f"faults injected: {inj.summary()}", file=sys.stderr)
    if args.trace:
        n = tracer.write_jsonl(args.trace)
        print(f"wrote {n} trace events to {args.trace}", file=sys.stderr)
    if args.json:
        print(json.dumps(result.summary(), indent=1))
    else:
        print(render_table([_stats_row(args.scheme, result.stats)],
                           title=f"{wl.name} under {args.scheme}"))
        if args.hotspots:
            print("\nrouter utilization (flit traversals):")
            print(system.network.utilization_grid())
            print("hotspots:", system.network.hotspots(top=3))
        print(f"\nwall time: {result.wall_seconds:.2f}s")
    return 0


def cmd_characterize(args) -> int:
    from repro.workloads.characterize import characterize
    wl = _make_workload(args)
    c = characterize(wl)
    rows = [{"property": k, "value": v} for k, v in c.summary().items()]
    print(render_table(rows, title=f"{wl.name} — structural "
                                   f"characterization"))
    return 0


def cmd_compare(args) -> int:
    schemes = args.schemes.split(",") if args.schemes else list(SCHEMES)
    unknown = set(schemes) - set(SCHEMES)
    if unknown:
        print(f"unknown scheme(s): {sorted(unknown)}", file=sys.stderr)
        return 2
    _apply_cache_flag(args)
    _apply_sanitize_flag(args)
    _apply_resume_flag(args)
    from repro.analysis.sweep import SchemeSweep
    sweep = SchemeSweep(
        {s: (s, _make_config(args, s)) for s in schemes},
        max_cycles=args.max_cycles, jobs=args.jobs)
    result = sweep.run({args.workload: _make_spec(args)})
    grid = result.stats[args.workload]
    rows: List[Dict[str, object]] = []
    base_stats = grid[schemes[0]]
    for scheme in schemes:
        stats = grid[scheme]
        row = _stats_row(scheme, stats)
        row["aborts x"] = round(stats.tx_aborted
                                / max(base_stats.tx_aborted, 1), 3)
        row["exec x"] = round(stats.execution_cycles
                              / base_stats.execution_cycles, 3)
        rows.append(row)
    print(render_table(rows, title=f"{args.workload}: scheme comparison "
                                   f"(x = vs {schemes[0]})"))
    return 0


def cmd_experiment(args) -> int:
    fn = EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; choices: "
              f"{sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    _apply_cache_flag(args)
    _apply_sanitize_flag(args)
    _apply_resume_flag(args)
    result = fn(args)
    print(result.text)
    return 0


def cmd_chaos(args) -> int:
    _apply_sanitize_flag(args)
    from repro.analysis.chaos import TOUR, run_chaos
    faults = _make_faults(args)
    if faults is None:
        print("no faults configured: pass at least one of --drop/--dup/"
              "--delay/--reorder/--stall-interval", file=sys.stderr)
        return 2
    workloads = (args.workloads.split(",") if args.workloads
                 else list(TOUR))
    unknown = set(workloads) - set(STAMP_WORKLOADS)
    if unknown:
        print(f"unknown workload(s): {sorted(unknown)}", file=sys.stderr)
        return 2
    report = run_chaos(faults, workloads=workloads, scheme=args.scheme,
                       nodes=args.nodes, scale=args.scale,
                       seed=args.seed, max_cycles=args.max_cycles,
                       verbose=not args.json)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def cmd_scenario(args) -> int:
    from repro.scenarios import get_scenario, list_scenarios
    if args.action == "list":
        specs = list_scenarios(tag=args.tag)
        rows = [{
            "name": s.name,
            "nodes": s.nodes,
            "workloads": ",".join(w.label for w in s.workloads),
            "schemes": ",".join(s.schemes),
            "seeds": len(s.seeds),
            "cells": s.num_cells,
            "tags": ",".join(s.tags),
        } for s in specs]
        print(render_table(rows, title="Registered scenarios"))
        return 0
    if args.action == "validate":
        names = args.names or [s.name for s in list_scenarios()]
        bad = 0
        for name in names:
            try:
                spec = get_scenario(name)
            except KeyError as exc:
                print(f"{name}: {exc}", file=sys.stderr)
                bad += 1
                continue
            problems = spec.validate()
            if problems:
                bad += 1
                print(f"{name}: INVALID")
                for p in problems:
                    print(f"  - {p}")
            else:
                print(f"{name}: ok ({spec.describe()})")
        return 1 if bad else 0
    # action == "run"
    if not args.names:
        print("scenario run needs at least one scenario name",
              file=sys.stderr)
        return 2
    _apply_cache_flag(args)
    _apply_sanitize_flag(args)
    _apply_resume_flag(args)
    from repro.scenarios import run_scenario
    rc = 0
    for name in args.names:
        try:
            spec = get_scenario(name)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        result = run_scenario(
            spec, smoke=args.smoke, jobs=args.jobs,
            max_cycles=args.max_cycles, verbose=not args.json)
        if args.json:
            print(json.dumps(result.to_dict(), indent=1))
        else:
            print(result.render_text())
            print(f"({result.cache_hits}/{len(result.results)} cells "
                  f"from cache)")
        if args.out:
            manifest = result.write_manifest(args.out)
            print(f"wrote manifest to {manifest}", file=sys.stderr)
    return rc


def cmd_tournament(args) -> int:
    schemes = args.schemes.split(",") if args.schemes else []
    unknown = set(schemes) - set(SCHEMES)
    if unknown:
        print(f"unknown scheme(s): {sorted(unknown)}", file=sys.stderr)
        return 2
    if schemes and "puno" not in schemes:
        schemes.insert(0, "puno")  # the normalization base
    _apply_cache_flag(args)
    _apply_sanitize_flag(args)
    _apply_resume_flag(args)
    from repro.schemes.tournament import run_tournament
    result = run_tournament(smoke=args.smoke, jobs=args.jobs,
                            schemes=tuple(schemes),
                            max_cycles=args.max_cycles,
                            verbose=not args.json)
    if args.json:
        print(json.dumps(result.to_dict(), indent=1))
    else:
        print(result.render_text())
        print(f"({result.cache_hits}/{len(result.results)} cells "
              f"from cache)")
    if args.out:
        manifest = result.write_manifest(args.out)
        print(f"wrote manifest to {manifest}", file=sys.stderr)
    return 0


def cmd_golden(args) -> int:
    from repro.scenarios.golden import (
        SCALE_SCENARIOS,
        check_golden,
        check_scale_golden,
        check_scheme_golden,
        compute_golden_digests,
        compute_scale_digests,
        compute_scheme_digests,
        save_golden,
        save_scale_golden,
        save_scheme_golden,
    )
    scenarios = SCALE_SCENARIOS
    if args.scenarios:
        scenarios = tuple(s for s in args.scenarios.split(",") if s)
    if args.tournament:
        if args.update:
            digests = compute_scheme_digests(verbose=not args.json)
            path = save_scheme_golden(digests, args.file)
            print(f"pinned {len(digests)} scheme digest(s) to {path}")
            return 0
        try:
            report = check_scheme_golden(args.file,
                                         verbose=not args.json)
        except (FileNotFoundError, KeyError):
            print(f"no scheme section in {args.file}; pin it with "
                  f"'repro golden --tournament --update'",
                  file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report.to_dict(), indent=1))
        else:
            print(report.describe())
        return 0 if report.ok else 1
    if args.scale:
        if args.update:
            digests = compute_scale_digests(verbose=not args.json,
                                            scenarios=scenarios)
            path = save_scale_golden(digests, args.file)
            print(f"pinned {len(digests)} scale digest(s) to {path}")
            return 0
        try:
            report = check_scale_golden(args.file, verbose=not args.json,
                                        scenarios=scenarios)
        except (FileNotFoundError, KeyError):
            print(f"no scale section in {args.file}; pin it with "
                  f"'repro golden --scale --update'", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report.to_dict(), indent=1))
        else:
            print(report.describe())
        return 0 if report.ok else 1
    if args.update:
        digests = compute_golden_digests(verbose=not args.json)
        path = save_golden(digests, args.file)
        print(f"pinned {len(digests)} golden digest(s) to {path}")
        return 0
    try:
        report = check_golden(args.file, verbose=not args.json)
    except FileNotFoundError:
        print(f"no golden file at {args.file}; create one with "
              f"'repro golden --update'", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.describe())
    return 0 if report.ok else 1


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.lint.baseline import (
        BaselineError,
        apply_baseline,
        find_default_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.lint.runner import (
        GitDiffError,
        explain_rule_text,
        lint_paths,
        list_rules_text,
    )
    if args.list_rules:
        print(list_rules_text())
        return 0
    if args.explain:
        text = explain_rule_text(args.explain)
        if text is None:
            print(f"unknown rule {args.explain!r}; see "
                  f"'repro lint --list-rules'", file=sys.stderr)
            return 2
        print(text)
        return 0
    try:
        report = lint_paths(args.paths or None, deep=args.deep,
                            diff_base=args.diff)
    except GitDiffError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        print(f"lint internal error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = Path(args.baseline or "lint-baseline.json")
        n = write_baseline(target, report.violations)
        print(f"wrote {n} suppression(s) to {target} — fill in the "
              f"justifications before committing")
        return 0
    if not args.no_baseline:
        bpath = (Path(args.baseline) if args.baseline
                 else find_default_baseline())
        if bpath is not None:
            try:
                sups = load_baseline(bpath)
            except BaselineError as exc:
                print(f"lint: {exc}", file=sys.stderr)
                return 2
            kept, suppressed, unused = apply_baseline(
                report.violations, sups)
            report.violations = kept
            report.suppressed = suppressed
            if not args.diff:  # a diff-scoped run sees few findings,
                #                so "unmatched" does not mean "stale"
                for s in unused:
                    print(f"lint: stale baseline entry ({s.rule} @ "
                          f"{s.path}) matched nothing — prune it",
                          file=sys.stderr)
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        out = report.to_sarif(repo_root=Path.cwd())
        if args.out:
            Path(args.out).write_text(out + "\n")
            print(f"wrote SARIF to {args.out}", file=sys.stderr)
        else:
            print(out)
    else:
        print(report.render_text())
    return report.exit_code


def cmd_profile(args) -> int:
    from repro.analysis.profiler import profile_run
    wl = _make_workload(args)
    cfg = _make_config(args, args.scheme)
    report = profile_run(wl, cfg, args.scheme, top=args.top,
                         max_cycles=args.max_cycles)
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report.to_dict(), f, indent=1)
        print(f"wrote profile to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.render_text())
    return 0


def cmd_area(args) -> int:
    est = estimate_overhead(pbuffer_entries=args.pbuffer,
                            txlb_entries=args.txlb)
    for key, value in est.items():
        if key.endswith("overhead"):
            print(f"{key}: {100 * value:.2f}%")
        else:
            print(f"{key}: {value:.1f}")
    return 0


# ---------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="PUNO (IPDPS 2014) reproduction toolkit")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="print the Table II configuration")
    sub.add_parser("workloads", help="list available workloads")

    def common(sp):
        sp.add_argument("workload",
                        choices=sorted(STAMP_WORKLOADS) + ["synthetic"])
        sp.add_argument("--nodes", type=int, default=16)
        sp.add_argument("--scale", type=float, default=0.5)
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--max-cycles", type=int, default=500_000_000)
        sp.add_argument("--instances", type=int, default=12,
                        help="synthetic only")
        sp.add_argument("--shared-lines", type=int, default=64,
                        help="synthetic only")
        sp.add_argument("--tx-reads", type=int, default=8,
                        help="synthetic only")
        sp.add_argument("--tx-writes", type=int, default=2,
                        help="synthetic only")

    def sanitize_opt(sp):
        sp.add_argument("--sanitize", action="store_true",
                        help="enable the dynamic protocol sanitizer "
                             "(same as REPRO_SANITIZE=1)")

    run_p = sub.add_parser("run", help="simulate one workload")
    common(run_p)
    sanitize_opt(run_p)
    run_p.add_argument("--scheme", choices=SCHEMES, default="baseline")
    run_p.add_argument("--faults", metavar="SPEC",
                       help="inject coherence faults, e.g. "
                            "'drop=0.01,dup=0.005,delay=0.05,seed=7' "
                            "(arms the engine watchdog)")
    run_p.add_argument("--json", action="store_true",
                       help="print the summary as JSON")
    run_p.add_argument("--trace", metavar="FILE",
                       help="write a JSONL event trace")
    run_p.add_argument("--hotspots", action="store_true",
                       help="print router utilization after the run")

    char_p = sub.add_parser("characterize",
                            help="static structural summary of a "
                                 "workload (no simulation)")
    common(char_p)

    def parallel_opts(sp):
        sp.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep "
                             "(0 = all cores)")
        sp.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache "
                             "(same as REPRO_NO_CACHE=1)")
        sp.add_argument("--resume", action="store_true",
                        help="checkpoint completed sweep cells so an "
                             "interrupted grid resumes (same as "
                             "REPRO_SWEEP_CHECKPOINT=<dir>)")
        sp.add_argument("--checkpoint-dir",
                        default=".repro-sweep-checkpoint",
                        help="where --resume stores completed cells")

    cmp_p = sub.add_parser("compare", help="compare schemes")
    common(cmp_p)
    sanitize_opt(cmp_p)
    cmp_p.add_argument("--schemes", default=None,
                       help="comma-separated subset of "
                            f"{','.join(SCHEMES)}")
    parallel_opts(cmp_p)

    exp_p = sub.add_parser("experiment",
                           help="regenerate one paper table/figure")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--scale", type=float, default=0.4)
    exp_p.add_argument("--seed", type=int, default=0)
    sanitize_opt(exp_p)
    parallel_opts(exp_p)

    lint_p = sub.add_parser(
        "lint", help="simulator-specific static analysis "
                     "(exit 0 clean / 1 violations / 2 internal error)")
    lint_p.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    lint_p.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    lint_p.add_argument("--out", metavar="FILE",
                        help="with --format sarif, write the log to "
                             "FILE instead of stdout")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    lint_p.add_argument("--explain", metavar="RULE",
                        help="print one rule's long-form rationale "
                             "and exit")
    lint_p.add_argument("--deep", action="store_true",
                        help="also run the whole-program passes "
                             "(determinism taint, handler "
                             "exhaustiveness, snapshot contract)")
    lint_p.add_argument("--diff", metavar="BASE",
                        help="report only findings in files changed "
                             "vs the given git rev (deep analysis "
                             "still sees the whole program)")
    lint_p.add_argument("--baseline", metavar="FILE",
                        help="baseline file (default: nearest "
                             "lint-baseline.json up from the cwd)")
    lint_p.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    lint_p.add_argument("--write-baseline", action="store_true",
                        help="write current findings as a baseline "
                             "(justifications left for the author)")

    prof_p = sub.add_parser(
        "profile", help="cProfile one cell with per-callback and "
                        "per-message-type accounting")
    common(prof_p)
    prof_p.add_argument("--scheme", choices=SCHEMES, default="baseline")
    prof_p.add_argument("--top", type=int, default=15,
                        help="rows per profile section")
    prof_p.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    prof_p.add_argument("--out", metavar="FILE",
                        help="also write the JSON report to FILE")

    scen_p = sub.add_parser(
        "scenario", help="list / validate / run declarative experiment "
                         "scenarios (workload x scheme x seed matrices)")
    scen_p.add_argument("action", choices=("list", "validate", "run"))
    scen_p.add_argument("names", nargs="*",
                        help="scenario name(s); validate defaults to "
                             "all registered scenarios")
    scen_p.add_argument("--tag", default=None,
                        help="filter 'list' by tag (paper, scaled, "
                             "family, stress, chaos)")
    scen_p.add_argument("--smoke", action="store_true",
                        help="run the scaled-down smoke variant")
    scen_p.add_argument("--max-cycles", type=int, default=None,
                        help="override the scenario's cycle budget")
    scen_p.add_argument("--out", metavar="DIR",
                        help="write manifest.json + per-cell snapshot "
                             "JSONs under DIR/<scenario>/")
    scen_p.add_argument("--json", action="store_true",
                        help="print the manifest body as JSON")
    sanitize_opt(scen_p)
    parallel_opts(scen_p)

    gold_p = sub.add_parser(
        "golden", help="golden-run regression suite: compare canonical "
                       "snapshot digests of a pinned STAMP tour "
                       "(exit 0 match / 1 mismatch / 2 never pinned)")
    gold_p.add_argument("--update", action="store_true",
                        help="re-pin the digests (bless an intentional "
                             "behaviour change)")
    gold_p.add_argument("--file", default="tests/golden/golden.json",
                        help="golden file location")
    gold_p.add_argument("--scale", action="store_true",
                        help="check (or --update pin) the scale "
                             "section: sanitized smoke cells of the "
                             "paper-256/paper-1024 scenarios")
    gold_p.add_argument("--scenarios", default="",
                        help="with --scale: comma-separated subset of "
                             "the scale scenarios to run (default all)")
    gold_p.add_argument("--tournament", action="store_true",
                        help="check (or --update pin) the scheme "
                             "section: sanitized tournament cells of "
                             "every registered scheme")
    gold_p.add_argument("--json", action="store_true",
                        help="print the report as JSON")

    tour_p = sub.add_parser(
        "tournament", help="sweep every registered scheme head-to-head "
                           "against PUNO on the 16-node tournament "
                           "matrix (x = vs puno)")
    tour_p.add_argument("--schemes", default=None,
                        help="comma-separated subset of "
                             f"{','.join(SCHEMES)} (puno is always "
                             f"included as the base)")
    tour_p.add_argument("--smoke", action="store_true",
                        help="run the scaled-down smoke variant")
    tour_p.add_argument("--max-cycles", type=int, default=None,
                        help="override the tournament cycle budget")
    tour_p.add_argument("--out", metavar="DIR",
                        help="write manifest.json + per-cell snapshot "
                             "JSONs under DIR/tournament-16/")
    tour_p.add_argument("--json", action="store_true",
                        help="print the manifest body as JSON")
    sanitize_opt(tour_p)
    parallel_opts(tour_p)

    area_p = sub.add_parser("area", help="Table III area/power model")
    area_p.add_argument("--pbuffer", type=int, default=16)
    area_p.add_argument("--txlb", type=int, default=32)

    chaos_p = sub.add_parser(
        "chaos", help="run workloads under injected coherence faults "
                      "(exit 0 iff every cell commits or stalls in a "
                      "fault-explained way)")
    chaos_p.add_argument("--workloads", default=None,
                         help="comma-separated STAMP subset "
                              "(default: the full tour)")
    chaos_p.add_argument("--scheme", choices=SCHEMES, default="puno")
    chaos_p.add_argument("--nodes", type=int, default=16)
    chaos_p.add_argument("--scale", type=float, default=0.2)
    chaos_p.add_argument("--seed", type=int, default=0)
    chaos_p.add_argument("--max-cycles", type=int, default=500_000_000)
    chaos_p.add_argument("--drop", type=float, default=0.0,
                         help="message drop rate")
    chaos_p.add_argument("--dup", type=float, default=0.0,
                         help="response duplication rate")
    chaos_p.add_argument("--delay", type=float, default=0.0,
                         help="message delay rate")
    chaos_p.add_argument("--reorder", type=float, default=0.0,
                         help="response reorder rate")
    chaos_p.add_argument("--delay-max", type=int, default=64,
                         help="max injected delay in cycles")
    chaos_p.add_argument("--fault-seed", type=int, default=0,
                         help="seed for the fault decision stream")
    chaos_p.add_argument("--stall-interval", type=int, default=0,
                         help="cycles between injected node stalls")
    chaos_p.add_argument("--stall-duration", type=int, default=0,
                         help="length of each injected node stall")
    sanitize_opt(chaos_p)
    chaos_p.add_argument("--json", action="store_true",
                         help="print the report as JSON")

    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "describe": cmd_describe,
        "workloads": cmd_workloads,
        "run": cmd_run,
        "characterize": cmd_characterize,
        "compare": cmd_compare,
        "experiment": cmd_experiment,
        "area": cmd_area,
        "lint": cmd_lint,
        "profile": cmd_profile,
        "chaos": cmd_chaos,
        "scenario": cmd_scenario,
        "golden": cmd_golden,
        "tournament": cmd_tournament,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
