"""System assembly and run harness.

``System`` wires the full CMP together — event engine, mesh network,
one directory controller and one node controller per node, a contention
manager, and (optionally) the PUNO units — runs a workload to
completion, and returns a :class:`RunResult` with the statistics every
experiment consumes.

The module also provides coherence/atomicity *audits* used throughout
the test suite: the single-writer/multi-reader invariant over all L1s
and directories, and the value audit (the final memory image must equal
exactly the committed increments).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.coherence.directory import DirectoryController
from repro.coherence.dirstore import DirEntryPool
from repro.coherence.states import DirState, L1State
from repro.core.bitset import bit_list, mask_of
from repro.core.puno import DirectoryPUNO
from repro.core.txlb import TxLB
from repro.htm.contention.base import ContentionManager
from repro.htm.node import NodeController
from repro.network.message import Message, MessageType
from repro.network.network import Network
from repro.network.topology import build_topology
from repro.sanitize import sanitize_enabled
from repro.schemes import Scheme, get_scheme
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.sim.stats import Stats
from repro.sim.watchdog import StallError, Watchdog, WatchdogConfig
from repro.workloads.base import Workload

class CoherenceViolation(AssertionError):
    """Raised by audits when an invariant is broken."""


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    stats: Stats
    config: SystemConfig
    workload_name: str
    cm_name: str
    wall_seconds: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        s = self.stats.summary()
        s["wall_seconds"] = self.wall_seconds
        return s


class System:
    """A fully-wired simulated CMP executing one workload."""

    def __init__(self, config: SystemConfig, workload: Workload,
                 cm: Union[str, ContentionManager] = "baseline",
                 trace=None, sampler=None, node_cls=None,
                 sanitize: Optional[bool] = None,
                 faults=None,
                 watchdog: Union[None, bool, WatchdogConfig] = None):
        if workload.num_nodes != config.num_nodes:
            raise ValueError(
                f"workload has {workload.num_nodes} programs for "
                f"{config.num_nodes} nodes")
        self.config = config
        self.workload = workload
        self.sim = Simulator()
        self.stats = Stats(config.num_nodes)
        self.stats.tracer = trace  # Optional[repro.sim.trace.Tracer]
        self.sampler = sampler  # Optional[TimeSeriesSampler]
        if sampler is not None:
            sampler.attach(self.sim, self.stats)
        self.mesh = build_topology(config.network)
        self.network = Network(self.sim, self.mesh, self.stats)
        self.rng = RngFactory(config.seed)

        # Resolve the scheme plug-in (repro.schemes): a string selects
        # a registered Scheme, which supplies all three policy axes —
        # contention manager, directory forward policy, and (unless the
        # caller passes an explicit node_cls) version management.
        self.scheme: Optional[Scheme] = (get_scheme(cm)
                                         if isinstance(cm, str) else None)
        self.dir_arbiter = (self.scheme.make_arbiter(config)
                            if self.scheme is not None else None)
        self.cm = self._make_cm(cm)
        self.cm.sim = self.sim
        # One DirEntry free list for the whole system: entries retired
        # at any home bank are reused by every other (zero-alloc steady
        # state; see repro.coherence.dirstore).
        self.dir_pool = DirEntryPool()
        self.punos: List[Optional[DirectoryPUNO]] = []
        self.directories: List[DirectoryController] = []
        self.nodes: List[NodeController] = []
        self._done_count = 0
        self._finished_at: Optional[int] = None

        if node_cls is None and self.scheme is not None:
            node_cls = self.scheme.resolve_node_cls()
        node_cls = node_cls or NodeController
        node_extra = {}
        if node_cls is not NodeController:
            # lazy nodes share one commit token (see repro.htm.lazy)
            from repro.htm.lazy import CommitToken, LazyNodeController
            if issubclass(node_cls, LazyNodeController):
                node_extra["commit_token"] = CommitToken()
        for n in range(config.num_nodes):
            puno = None
            if config.puno.enabled:
                puno = DirectoryPUNO(self.sim, config.num_nodes,
                                     config.puno, self.stats)
            self.punos.append(puno)
            directory = DirectoryController(self.sim, n, config,
                                            self.network, self.stats, puno,
                                            pool=self.dir_pool,
                                            arbiter=self.dir_arbiter)
            self.directories.append(directory)
            node = node_cls(
                self.sim, n, config, self.network, self.stats, self.cm,
                workload.programs[n], on_done=self._node_done,
                txlb=TxLB(config.puno.txlb_entries), **node_extra,
            )
            self.nodes.append(node)
            self.network.register_table(
                n, self._make_endpoint(directory, node))

        # Dynamic protocol sanitizer: explicit argument wins, otherwise
        # the REPRO_SANITIZE environment flag (which parallel sweep
        # workers inherit) decides.
        self.sanitizer = None
        if sanitize if sanitize is not None else sanitize_enabled():
            from repro.sanitize.sanitizer import ProtocolSanitizer
            self.sanitizer = ProtocolSanitizer(self)
            self.sanitizer.attach()

        # Fault injection wraps whichever send implementation the
        # sanitizer selected, so it must attach after the sanitizer.
        self.fault_injector = None
        if faults is not None:
            from repro.faults import FaultInjector
            self.fault_injector = FaultInjector(faults, config.num_nodes)
            self.fault_injector.attach(self)

        # Engine watchdog: True selects the default thresholds, a
        # WatchdogConfig tunes them.  Its tick event mutates no protocol
        # state, so attaching it never changes run statistics.
        self.watchdog: Optional[Watchdog] = None
        if watchdog:
            wcfg = watchdog if isinstance(watchdog, WatchdogConfig) else None
            self.watchdog = Watchdog(wcfg)
            self.watchdog.attach(self)

    # ------------------------------------------------------------------
    def _make_cm(self, cm: Union[str, ContentionManager]) -> ContentionManager:
        if isinstance(cm, ContentionManager):
            return cm
        # String names resolve through the scheme registry; the Scheme
        # preserves the historical cm:<name> RNG stream naming and the
        # avg_c2c plumbing, so registered built-ins are bit-identical
        # to the pre-plug-in construction.
        return self.scheme.make_cm(self.config, self.stats,
                                   avg_c2c=self.mesh.avg_latency)

    @staticmethod
    def _make_endpoint(directory: DirectoryController,
                       node: NodeController):
        # The directory's and node's dispatch tables are disjoint and
        # together cover every MessageType; merged into a dense list in
        # code order, the network delivers straight to the owning
        # controller's bound handler — no membership test, no closure
        # hop, no per-delivery dict lookup.
        merged = {**directory.handlers, **node.handlers}
        assert set(merged) == set(MessageType), "endpoint dispatch incomplete"
        return [merged[t] for t in MessageType]

    # ------------------------------------------------------------------
    def _node_done(self, node: int) -> None:
        self._done_count += 1
        if self._done_count == self.config.num_nodes:
            self._finished_at = self.sim.now
            for puno in self.punos:
                if puno is not None:
                    puno.stop()
            if self.sampler is not None:
                self.sampler.stop()
            if self.watchdog is not None:
                self.watchdog.stop()
            if self.fault_injector is not None:
                self.fault_injector.stop()

    def run(self, max_cycles: Optional[int] = None,
            audit: bool = True) -> RunResult:
        """Run the workload to completion and return statistics.

        ``max_cycles`` is a watchdog: exceeding it raises, which keeps
        broken configurations from spinning forever in tests.
        """
        t0 = time.perf_counter()
        for node in self.nodes:
            node.start()
        # Run in bounded chunks so the watchdog can fire even while
        # PUNO timeout timers keep the event heap non-empty.
        chunk = 2_000_000
        while True:
            self.sim.run(max_events=chunk)
            if self._finished_at is not None and self.sim.idle():
                break
            if self.sim.pending == 0:
                break
            if max_cycles is not None and self.sim.now > max_cycles:
                if self.watchdog is not None:
                    raise StallError(self.watchdog.make_report(
                        "max-cycles",
                        f"exceeded the max_cycles budget of {max_cycles}"))
                raise RuntimeError(
                    f"watchdog: {self.sim.now} cycles without completion "
                    f"({self._done_count}/{self.config.num_nodes} nodes done)")
        if self._finished_at is None:
            if self.watchdog is not None:
                raise StallError(self.watchdog.make_report(
                    "deadlock", "event heap drained before nodes finished"))
            raise RuntimeError("event heap drained before nodes finished")
        self.stats.execution_cycles = self._finished_at
        wall = time.perf_counter() - t0
        if audit:
            self.audit_coherence()
            self.audit_values()
        extras: Dict[str, float] = {}
        if self.sanitizer is not None:
            extras["sanitizer_checks"] = float(self.stats.sanitizer_checks)
        return RunResult(self.stats, self.config, self.workload.name,
                         self.cm.name, wall, extras=extras)

    # ==================================================================
    # audits
    # ==================================================================
    def audit_coherence(self) -> None:
        """Single-writer / multi-reader over every line in the system."""
        holders: Dict[int, List] = {}
        for node in self.nodes:
            for line in node.l1.lines():
                holders.setdefault(line.addr, []).append((node.node, line))
        for directory in self.directories:
            for addr, entry in directory.entries.items():
                owners = [(n, l) for n, l in holders.get(addr, [])
                          if l.state in (L1State.E, L1State.M)]
                sharers = [(n, l) for n, l in holders.get(addr, [])
                           if l.state is L1State.S]
                if len(owners) > 1:
                    raise CoherenceViolation(
                        f"addr {addr}: multiple owners {owners}")
                if owners and sharers:
                    raise CoherenceViolation(
                        f"addr {addr}: owner {owners} with sharers {sharers}")
                if entry.state is DirState.M:
                    holder_ids = {n for n, _ in owners}
                    in_limbo = (entry.owner is not None and
                                addr in self.nodes[entry.owner].wb_buffer)
                    if entry.owner not in holder_ids and not in_limbo:
                        raise CoherenceViolation(
                            f"addr {addr}: dir owner {entry.owner} holds no "
                            f"E/M copy")
                if entry.state is DirState.S:
                    if owners:
                        raise CoherenceViolation(
                            f"addr {addr}: dir says S but owners {owners}")
                    holder_mask = mask_of(n for n, _ in sharers)
                    if holder_mask & ~entry.sharers:
                        raise CoherenceViolation(
                            f"addr {addr}: S holders "
                            f"{bit_list(holder_mask)} not in directory "
                            f"sharer list {bit_list(entry.sharers)}")
                if entry.state is DirState.I and holders.get(addr):
                    live = [h for h in holders[addr]
                            if h[1].state is not L1State.I]
                    if live:
                        raise CoherenceViolation(
                            f"addr {addr}: dir I but cached {live}")

    def global_value(self, addr: int) -> int:
        """The coherent value of a line (owner copy, else home copy)."""
        home = self.directories[self.config.home_node(addr)]
        entry = home.entries.get(addr)
        if entry is None:
            return 0
        if entry.state is DirState.M and entry.owner is not None:
            owner_node = self.nodes[entry.owner]
            line = owner_node.l1.lookup(addr, touch=False)
            if line is not None:
                return line.value
            if addr in owner_node.wb_buffer:
                return owner_node.wb_buffer[addr]
            raise CoherenceViolation(f"addr {addr}: owner copy missing")
        return entry.value

    def audit_values(self) -> None:
        """Atomicity audit: memory == sum of committed increments."""
        addrs = set()
        for directory in self.directories:
            addrs.update(directory.entries.keys())
        total = sum(self.global_value(a) for a in sorted(addrs))
        committed = sum(n.committed_increments for n in self.nodes)
        if total != committed:
            raise CoherenceViolation(
                f"value audit failed: memory sum {total} != committed "
                f"increments {committed}")


def run_workload(config: SystemConfig, workload: Workload,
                 cm: Union[str, ContentionManager] = "baseline",
                 max_cycles: Optional[int] = None,
                 audit: bool = True, faults=None,
                 watchdog: Union[None, bool, WatchdogConfig] = None
                 ) -> RunResult:
    """One-call convenience wrapper used by examples and benchmarks."""
    return System(config, workload, cm, faults=faults,
                  watchdog=watchdog).run(max_cycles=max_cycles, audit=audit)
