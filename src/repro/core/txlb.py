"""Transaction Length Buffer (TxLB), Section III-D.

A per-node table tracking the average length of each *static*
transaction's past dynamic instances:

    StaticTxLen_new = (StaticTxLen_prev + DynTxLen) / 2        (1)

— an exponential moving average that weights recent instances more.
The hardware table holds ``capacity`` entries with LRU replacement; on
overflow the evicted entry moves to a software-managed map (the paper's
fallback for the "rare case of overflow"), so length history is never
lost, only its access cost changes (not modeled — overflows are merely
counted).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional


class TxLB:
    """Average-length tracker for static transactions."""

    def __init__(self, capacity: int = 32):
        self.capacity = capacity
        self._hw: "OrderedDict[int, float]" = OrderedDict()
        self._soft: Dict[int, float] = {}
        self.updates = 0
        self.overflows = 0

    def update(self, static_id: int, dyn_len: int) -> float:
        """Fold a committed instance's length in via formula (1)."""
        self.updates += 1
        prev = self._get(static_id)
        new = dyn_len if prev is None else (prev + dyn_len) / 2.0
        self._soft.pop(static_id, None)
        self._hw[static_id] = new
        self._hw.move_to_end(static_id)
        while len(self._hw) > self.capacity:
            evicted_id, evicted_len = self._hw.popitem(last=False)
            self._soft[evicted_id] = evicted_len
            self.overflows += 1
        return new

    def _get(self, static_id: int) -> Optional[float]:
        if static_id in self._hw:
            return self._hw[static_id]
        return self._soft.get(static_id)

    def average_length(self, static_id: int) -> Optional[int]:
        """Current estimate, or None when the transaction is unseen."""
        # Called once per issued transactional request: one dict probe
        # on the hardware table (plus the LRU touch) instead of the
        # two-step _get/membership dance.
        hw = self._hw
        v = hw.get(static_id)
        if v is not None:
            hw.move_to_end(static_id)
            return int(v)
        v = self._soft.get(static_id)
        return None if v is None else int(v)

    def estimate_remaining(self, static_id: int, elapsed: int) -> int:
        """T_est for the notification: remaining run time in cycles.

        Returns −1 when no history exists (no notification is sent).
        """
        avg = self.average_length(static_id)
        if avg is None:
            return -1
        return max(0, avg - elapsed)

    def __len__(self) -> int:
        return len(self._hw)
