"""VLSI area/power estimation (Table III).

The paper fed the three PUNO structures through a commercial memory
compiler at 65 nm / 2.3 GHz / 0.9 V and compared against one core of
the Sun Rock processor (14,000,000 um^2 and 10 W per core, 16 cores).
No memory compiler is available here, so the substitution is a
first-order SRAM model — area and power scale linearly with storage
bits plus a fixed periphery term — **calibrated to the paper's own
per-component outputs** for the paper's configuration, and used to
extrapolate when ablations resize the structures.

Structure sizing (per the paper's Section III and Table II/III):

* P-Buffer: 16 entries x (32-bit priority + 2-bit validity), one per
  directory; plus the directory-wide 32-bit rollover counter.
* TxLB: 32 entries x (32-bit average length + tag), one per node.
* UD pointers: 8 bits per tracked directory entry (over-provisioned
  from 4, matching the paper's note about compiler constraints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Rock-class reference die (per core), 65 nm.
ROCK_CORE_AREA_UM2 = 14_000_000.0
ROCK_CORE_POWER_MW = 10_000.0
ROCK_CORES = 16

# Calibration targets from Table III (whole-chip figures).
_PAPER_AREAS = {"pbuffer": 4700.0, "txlb": 5380.0, "ud": 47400.0}
_PAPER_POWERS = {"pbuffer": 7.28, "txlb": 7.52, "ud": 16.43}

# Paper-configuration storage-bit counts used to calibrate per-bit
# coefficients (16 directories / 16 nodes on chip).
_PBUF_BITS = 16 * (16 * (32 + 2) + 32)  # 16 dirs x (16 entries + rollover)
_TXLB_BITS = 16 * (32 * (32 + 8))  # 16 nodes x 32 entries x (len + tag)
_UD_ENTRIES = 16 * 370  # tracked entries per directory bank (calibrated)
_UD_BITS = _UD_ENTRIES * 8


@dataclass(frozen=True)
class ComponentEstimate:
    name: str
    bits: int
    area_um2: float
    power_mw: float


class PunoAreaModel:
    """Linear-in-bits SRAM model calibrated against Table III."""

    def __init__(self) -> None:
        self.area_per_bit = {
            "pbuffer": _PAPER_AREAS["pbuffer"] / _PBUF_BITS,
            "txlb": _PAPER_AREAS["txlb"] / _TXLB_BITS,
            "ud": _PAPER_AREAS["ud"] / _UD_BITS,
        }
        self.power_per_bit = {
            "pbuffer": _PAPER_POWERS["pbuffer"] / _PBUF_BITS,
            "txlb": _PAPER_POWERS["txlb"] / _TXLB_BITS,
            "ud": _PAPER_POWERS["ud"] / _UD_BITS,
        }

    # ------------------------------------------------------------------
    def pbuffer_bits(self, num_dirs: int, entries: int,
                     priority_bits: int = 32, validity_bits: int = 2) -> int:
        return num_dirs * (entries * (priority_bits + validity_bits) + 32)

    def txlb_bits(self, num_nodes: int, entries: int,
                  len_bits: int = 32, tag_bits: int = 8) -> int:
        return num_nodes * entries * (len_bits + tag_bits)

    def ud_bits(self, num_dirs: int, tracked_entries: int = 370,
                pointer_bits: int = 8) -> int:
        return num_dirs * tracked_entries * pointer_bits

    # ------------------------------------------------------------------
    def estimate(self, num_nodes: int = 16, pbuffer_entries: int = 16,
                 txlb_entries: int = 32) -> Dict[str, ComponentEstimate]:
        bits = {
            "pbuffer": self.pbuffer_bits(num_nodes, pbuffer_entries),
            "txlb": self.txlb_bits(num_nodes, txlb_entries),
            "ud": self.ud_bits(num_nodes),
        }
        out: Dict[str, ComponentEstimate] = {}
        for name, b in bits.items():
            out[name] = ComponentEstimate(
                name=name,
                bits=b,
                area_um2=b * self.area_per_bit[name],
                power_mw=b * self.power_per_bit[name],
            )
        return out


def estimate_overhead(num_nodes: int = 16, pbuffer_entries: int = 16,
                      txlb_entries: int = 32) -> Dict[str, float]:
    """Table III bottom line: totals and overhead vs a Rock core.

    The paper compares whole-chip PUNO storage against a *single*
    Rock core's area/power, yielding 0.41% area and 0.31% power.
    """
    model = PunoAreaModel()
    comps = model.estimate(num_nodes, pbuffer_entries, txlb_entries)
    area = sum(c.area_um2 for c in comps.values())
    power = sum(c.power_mw for c in comps.values())
    return {
        "pbuffer_area_um2": comps["pbuffer"].area_um2,
        "pbuffer_power_mw": comps["pbuffer"].power_mw,
        "txlb_area_um2": comps["txlb"].area_um2,
        "txlb_power_mw": comps["txlb"].power_mw,
        "ud_area_um2": comps["ud"].area_um2,
        "ud_power_mw": comps["ud"].power_mw,
        "total_area_um2": area,
        "total_power_mw": power,
        "area_overhead": area / ROCK_CORE_AREA_UM2,
        "power_overhead": power / ROCK_CORE_POWER_MW,
    }
