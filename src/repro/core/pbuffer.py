"""Transaction Priority Buffer (P-Buffer), Section III-B.

Each directory holds N entries — one per node — recording the latest
transaction priority (timestamp) observed from that node's coherence
requests.  A 2-bit validity counter per entry and a directory-wide
rollover timeout implement staleness control (Fig. 5):

* on timeout, every non-zero validity counter is decremented;
* on a priority update, the counter is incremented — twice when it was
  0, "to allow a longer timeout period";
* only entries with validity greater than the threshold (1) are used
  for unicast prediction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.config import PUNOConfig


class PBuffer:
    """Fixed-size {node -> (priority, validity)} table."""

    def __init__(self, num_nodes: int, config: PUNOConfig):
        if num_nodes > config.pbuffer_entries:
            raise ValueError(
                f"P-Buffer has {config.pbuffer_entries} entries for "
                f"{num_nodes} nodes"
            )
        self.config = config
        self.num_nodes = num_nodes
        self._priority: List[Optional[int]] = [None] * num_nodes
        self._validity: List[int] = [0] * num_nodes
        # advertised expected length of the recorded transaction (the
        # requester's TxLB estimate, carried on every request); 0 when
        # unknown.  Drives the expected-lifetime staleness check.
        self._length: List[int] = [0] * num_nodes
        # cycle of the last update per entry (liveness evidence: a
        # stalled-but-live transaction keeps polling and refreshing)
        self._touched: List[int] = [0] * num_nodes
        self.updates = 0
        self.invalidations = 0
        self.decays = 0

    # ------------------------------------------------------------------
    def update(self, node: int, timestamp: int,
               length_hint: int = 0, now: int = 0) -> Optional[int]:
        """Record the latest transaction priority seen from ``node``.

        Returns the previous timestamp (None on first sight) so the
        caller can observe priority *changes* — the timestamp delta of
        two successive transactions measures transaction lifetime,
        which drives the adaptive rollover timeout.
        """
        prev = self._priority[node]
        self._priority[node] = timestamp
        self._length[node] = length_hint
        self._touched[node] = now
        v = self._validity[node]
        bump = 2 if v == 0 else 1
        self._validity[node] = min(v + bump, self.config.validity_max)
        self.updates += 1
        return prev

    def invalidate(self, node: int) -> None:
        """Misprediction feedback: drop the stale priority."""
        self._validity[node] = 0
        self._priority[node] = None
        self._length[node] = 0
        self.invalidations += 1

    def decay(self) -> None:
        """Rollover timeout: age every non-zero validity counter."""
        self.decays += 1
        for i, v in enumerate(self._validity):
            if v > 0:
                self._validity[i] = v - 1

    # ------------------------------------------------------------------
    def usable(self, node: int, now: Optional[int] = None) -> bool:
        """Entry is fresh enough for unicast prediction.

        With ``now``, also applies the expected-lifetime check: an
        entry older than ``lifetime_factor`` x its own advertised
        transaction length almost certainly describes a transaction
        that already committed (the staleness mode that dominates
        short-transaction workloads, where the validity counters alone
        are too coarse).
        """
        ts = self._priority[node]
        if ts is None or self._validity[node] <= self.config.validity_threshold:
            return False
        if now is not None and self.config.lifetime_factor > 0:
            # A recently refreshed entry is live regardless of age: a
            # stalled-but-running transaction keeps polling, so its
            # wall-clock age can far exceed the advertised *active*
            # length.  Only age-gate entries that have gone silent.
            if now - self._touched[node] > self.config.recency_window:
                hint = self._length[node]
                if hint > 0 and (now - ts) > self.config.lifetime_factor * hint:
                    return False
        return True

    def priority(self, node: int) -> Optional[int]:
        return self._priority[node]

    def validity(self, node: int) -> int:
        return self._validity[node]

    def key(self, node: int) -> Optional[Tuple[int, int]]:
        """Total-order priority key (timestamp, node); smaller = older."""
        ts = self._priority[node]
        return None if ts is None else (ts, node)

    def length(self, node: int) -> int:
        """Advertised transaction length of the recorded entry (0 =
        unknown)."""
        return self._length[node]
