"""PUNO — Predictive Unicast and Notification (the paper's contribution).

The package implements the hardware structures of Section III:

* :class:`~repro.core.pbuffer.PBuffer` — per-directory transaction
  priority buffer with 2-bit validity counters and an adaptive rollover
  timeout;
* :func:`~repro.core.udpointer.recompute_ud` — unicast-destination
  pointer maintenance;
* :class:`~repro.core.txlb.TxLB` — per-node transaction length buffer
  (formula (1)) feeding the notification mechanism;
* :class:`~repro.core.puno.DirectoryPUNO` — the directory-side unit that
  ties them together: P-Buffer updates from incoming transactional
  requests, unicast-destination prediction, misprediction feedback;
* :mod:`~repro.core.hw_model` — the Table III area/power estimate.
"""

from repro.core.pbuffer import PBuffer
from repro.core.txlb import TxLB
from repro.core.udpointer import recompute_ud
from repro.core.puno import DirectoryPUNO
from repro.core.hw_model import PunoAreaModel, estimate_overhead

__all__ = [
    "PBuffer",
    "TxLB",
    "recompute_ud",
    "DirectoryPUNO",
    "PunoAreaModel",
    "estimate_overhead",
]
