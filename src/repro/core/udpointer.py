"""Unicast-Destination (UD) pointer maintenance, Section III-B.

Each directory entry carries the id of the sharer with the highest
known transaction priority.  The pointer is recomputed after the
directory services a request to the block — off the critical path, so
no latency is charged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.core.bitset import iter_bits
from repro.core.pbuffer import PBuffer


def recompute_ud(sharers: Union[int, Iterable[int]], pbuffer: PBuffer,
                 tx_readers: Optional[Dict[int, int]] = None,
                 now: Optional[int] = None) -> Optional[int]:
    """The sharer with the oldest usable priority, or None.

    ``sharers`` is either an integer bitmask (the directory entry's
    sharer vector) or an iterable of node ids (explicit target lists);
    both walk node ids in ascending order, so the result is identical.

    Only P-Buffer entries whose validity exceeds the threshold
    participate; ties in timestamp break on node id (the same total
    order used everywhere for conflict resolution).

    When ``tx_readers`` is given (the reader-epoch filter), a sharer is
    a candidate only if the transaction that added it to the sharer
    list is still the node's current transaction — i.e. the timestamp
    recorded at add time equals the node's current P-Buffer priority.
    Such a sharer *provably* holds the line in its live read set, so a
    priority-favourable unicast to it will be nacked.

    Runs after every directory service, so the staleness test is
    inlined over the P-Buffer's column arrays (one set of list loads
    hoisted out of the per-sharer loop) instead of calling
    ``pbuffer.usable``/``key`` per node — the result is the same
    predicate, localized.
    """
    best: Optional[int] = None
    best_key = None
    priority = pbuffer._priority
    validity = pbuffer._validity
    cfg = pbuffer.config
    threshold = cfg.validity_threshold
    lifetime_factor = cfg.lifetime_factor
    age_gate = now is not None and lifetime_factor > 0
    if age_gate:
        touched = pbuffer._touched
        length = pbuffer._length
        recency_window = cfg.recency_window
    nodes = iter_bits(sharers) if type(sharers) is int else sharers
    for node in nodes:
        ts = priority[node]
        if ts is None or validity[node] <= threshold:
            continue
        if age_gate and now - touched[node] > recency_window:
            # Only age-gate entries that have gone silent: a live but
            # stalled transaction keeps polling (see PBuffer.usable).
            hint = length[node]
            if hint > 0 and (now - ts) > lifetime_factor * hint:
                continue
        if tx_readers is not None:
            added_ts = tx_readers.get(node)
            if added_ts is None or added_ts != ts:
                continue
        key = (ts, node)
        if best_key is None or key < best_key:
            best_key = key
            best = node
    return best
