"""Unicast-Destination (UD) pointer maintenance, Section III-B.

Each directory entry carries the id of the sharer with the highest
known transaction priority.  The pointer is recomputed after the
directory services a request to the block — off the critical path, so
no latency is charged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.pbuffer import PBuffer


def recompute_ud(sharers: Iterable[int], pbuffer: PBuffer,
                 tx_readers: Optional[Dict[int, int]] = None,
                 now: Optional[int] = None) -> Optional[int]:
    """The sharer with the oldest usable priority, or None.

    Only P-Buffer entries whose validity exceeds the threshold
    participate; ties in timestamp break on node id (the same total
    order used everywhere for conflict resolution).

    When ``tx_readers`` is given (the reader-epoch filter), a sharer is
    a candidate only if the transaction that added it to the sharer
    list is still the node's current transaction — i.e. the timestamp
    recorded at add time equals the node's current P-Buffer priority.
    Such a sharer *provably* holds the line in its live read set, so a
    priority-favourable unicast to it will be nacked.
    """
    best: Optional[int] = None
    best_key = None
    for node in sharers:
        if not pbuffer.usable(node, now):
            continue
        if tx_readers is not None:
            added_ts = tx_readers.get(node)
            if added_ts is None or added_ts != pbuffer.priority(node):
                continue
        key = pbuffer.key(node)
        if best_key is None or key < best_key:
            best_key = key
            best = node
    return best
