"""Directory-side PUNO unit (Section III-B/C/E).

One unit per directory (home node).  It owns the P-Buffer and the
rollover-timeout machinery, maintains each entry's UD pointer after
services, decides when a transactional GETX can be unicast, and applies
misprediction feedback relayed on UNBLOCK messages.

The rollover counter's timeout period adapts to transaction behaviour:
every transactional request carries the requester's current
static-transaction length estimate (``TxTag.length_hint``), and the
unit keeps an exponential moving average of those hints — this is the
"average transaction length obtained from a hardware mechanism" the
paper uses to set the period.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.pbuffer import PBuffer
from repro.core.udpointer import recompute_ud
from repro.network.message import Message
from repro.sim.config import PUNOConfig
from repro.sim.engine import Simulator
from repro.sim.stats import (DECLINE_COMMITTING, DECLINE_DISABLED,
                             DECLINE_NO_TAG, DECLINE_REQUESTER_OLDER,
                             DECLINE_SHORT_NACKER, DECLINE_UD_NONE,
                             Stats)


class DirectoryPUNO:
    """P-Buffer + UD-pointer + unicast prediction for one directory."""

    def __init__(self, sim: Simulator, num_nodes: int, config: PUNOConfig,
                 stats: Stats):
        self.sim = sim
        self.config = config
        self.stats = stats
        self.pbuffer = PBuffer(num_nodes, config)
        self._avg_tx_len: float = float(config.min_timeout)
        self._active = True
        self._schedule_timeout()

    # ------------------------------------------------------------------
    # critical-path latency the directory charges for prediction
    # ------------------------------------------------------------------
    @property
    def predict_latency(self) -> int:
        return self.config.predict_latency

    # ------------------------------------------------------------------
    # P-Buffer updates from incoming coherence traffic
    # ------------------------------------------------------------------
    def observe_request(self, msg: Message) -> None:
        """Every transactional request refreshes the sender's priority."""
        tag = msg.tx
        if tag is None:
            return
        prev = self.pbuffer.update(tag.node, tag.timestamp, tag.length_hint,
                                   self.sim.now)
        self.stats.puno_pbuffer_updates += 1
        # Adaptive timeout: track the average transaction (attempt)
        # length.  Requests carry the sender's TxLB estimate; before
        # TxLBs warm up, fall back to priority-change deltas (timestamps
        # are begin cycles, so a change brackets an instance lifetime).
        if tag.length_hint > 0:
            self._avg_tx_len = (self._avg_tx_len + tag.length_hint) / 2.0
        elif prev is not None and tag.timestamp > prev:
            self._avg_tx_len = (self._avg_tx_len + (tag.timestamp - prev)) / 2.0

    # ------------------------------------------------------------------
    # unicast destination prediction
    # ------------------------------------------------------------------
    def predict_unicast(self, entry, msg: Message,
                        targets: Tuple[int, ...]) -> Optional[int]:
        """Return the unicast destination for a transactional GETX,
        or None to multicast as usual.

        The prediction fires only when the entry's UD pointer names a
        current sharer whose (fresh) priority beats the requester's.
        """
        declines = self.stats._puno_decline_counts
        if not self.config.unicast_enabled:
            declines[DECLINE_DISABLED] += 1
            return None
        tag = msg.tx
        if tag is None:
            declines[DECLINE_NO_TAG] += 1
            return None
        if msg.committing:
            # lazy commit-time publications always win; probing them
            # away would only delay the committer
            declines[DECLINE_COMMITTING] += 1
            return None
        ud = entry.ud
        if not self._ud_valid(entry, ud, targets):
            # The stored pointer is a fast path; when it is stale or
            # names the requester itself (upgrade), re-derive the best
            # candidate from the sharer set the directory is already
            # reading — the same off-critical-path computation that
            # maintains the pointer, applied at service time.
            readers = (entry.tx_readers if self.config.reader_epoch_filter
                       else None)
            ud = recompute_ud(targets, self.pbuffer, readers, self.sim.now)
            if ud is None:
                declines[DECLINE_UD_NONE] += 1
                return None
        hint = self.pbuffer.length(ud)
        if 0 < hint < self.config.min_nacker_length:
            # Probe cost/benefit: a nacker shorter than the probe's own
            # round trip cannot pay for the unicast detour.
            declines[DECLINE_SHORT_NACKER] += 1
            return None
        key = self.pbuffer.key(ud)
        if key is not None and key < (tag.timestamp, tag.node):
            if self.stats.tracer is not None:
                self.stats.tracer.emit(
                    "puno", self.sim.now, event="unicast", addr=msg.addr,
                    target=ud, requester=tag.node, req_ts=tag.timestamp,
                    target_ts=key[0])
            return ud
        declines[DECLINE_REQUESTER_OLDER] += 1
        return None

    def _ud_valid(self, entry, ud: Optional[int],
                  targets: Tuple[int, ...]) -> bool:
        if ud is None or ud not in targets:
            return False
        if not self.pbuffer.usable(ud, self.sim.now):
            return False
        if self.config.reader_epoch_filter:
            added_ts = entry.tx_readers.get(ud)
            if added_ts is None or added_ts != self.pbuffer.priority(ud):
                return False
        return True

    # ------------------------------------------------------------------
    # feedback and pointer maintenance
    # ------------------------------------------------------------------
    def feedback_mispredict(self, node: int) -> None:
        """UNBLOCK carried MP feedback: drop the stale priority."""
        self.pbuffer.invalidate(node)
        self.stats.puno_pbuffer_invalidations += 1
        if self.stats.tracer is not None:
            self.stats.tracer.emit("puno", self.sim.now,
                                   event="mp_feedback", node=node)

    def after_service(self, entry) -> None:
        """Recompute the UD pointer (off the critical path)."""
        readers = entry.tx_readers if self.config.reader_epoch_filter else None
        entry.ud = recompute_ud(entry.sharers, self.pbuffer, readers,
                                self.sim.now)

    # ------------------------------------------------------------------
    # rollover timeout
    # ------------------------------------------------------------------
    def _timeout_period(self) -> int:
        c = self.config
        if not c.adaptive_timeout:
            return c.fixed_timeout
        period = int(self._avg_tx_len * c.timeout_scale)
        return max(c.min_timeout, min(period, c.max_timeout))

    def _schedule_timeout(self) -> None:
        self.sim.call_later(self._timeout_period(), self._on_timeout)

    def _on_timeout(self) -> None:
        if not self._active:
            return
        self.pbuffer.decay()
        self.stats.puno_timeouts += 1
        self._schedule_timeout()

    def stop(self) -> None:
        """Stop rescheduling timeouts so the event heap can drain."""
        self._active = False
