"""Integer-bitmask node sets.

Directory sharer lists are plain ints — bit ``n`` set means node ``n``
is a member — so a 256-node sharer vector is one machine word-ish
object instead of a set of boxed ints, membership is a shift-and-mask,
and popcount is ``int.bit_count()``.  These helpers cover the few
operations that are not a one-liner at the call site; hot paths inline
the idioms directly (``mask |= 1 << n``, ``(mask >> n) & 1``,
``mask & ~(1 << n)``) and only fall back to the iteration helpers when
they genuinely need the member list.

Iteration order is ascending node id (lowest set bit first via the
``mask & -mask`` isolate trick), which matches ``sorted(set)`` of the
old representation — anything deterministic built from the iteration
(forward fan-out order, trace output) is bit-identical to the set-based
code.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple


def mask_of(nodes: Iterable[int]) -> int:
    """Bitmask with every node id in ``nodes`` set."""
    mask = 0
    for n in nodes:
        mask |= 1 << n
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield set-bit positions in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_list(mask: int) -> List[int]:
    """Set-bit positions, ascending (== ``sorted()`` of the old set)."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def bit_tuple(mask: int) -> Tuple[int, ...]:
    """Tuple form of :func:`bit_list` (fan-out target lists)."""
    return tuple(bit_list(mask))
