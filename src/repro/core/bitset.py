"""Integer-bitmask node sets.

Directory sharer lists are plain ints — bit ``n`` set means node ``n``
is a member — so a 256-node sharer vector is one machine word-ish
object instead of a set of boxed ints, membership is a shift-and-mask,
and popcount is ``int.bit_count()``.  These helpers cover the few
operations that are not a one-liner at the call site; hot paths inline
the idioms directly (``mask |= 1 << n``, ``(mask >> n) & 1``,
``mask & ~(1 << n)``) and only fall back to the iteration helpers when
they genuinely need the member list.

Iteration order is ascending node id (lowest set bit first via the
``mask & -mask`` isolate trick), which matches ``sorted(set)`` of the
old representation — anything deterministic built from the iteration
(forward fan-out order, trace output) is bit-identical to the set-based
code.

Wide masks
----------

Past one machine word the isolate trick gets quadratic-ish: every
``mask & -mask`` / ``mask ^= low`` pair works on the *full* remaining
big-int, so a 1024-bit mask with many sharers pays O(words) per
extracted bit.  The iteration helpers therefore switch to a chunked
scan above :data:`_WORD_BITS`: the mask is consumed one 64-bit word at
a time, and the per-bit inner loop runs on a small int.  The emitted
order is unchanged (ascending), so the fast path is observationally
identical to the naive loop — a property the hypothesis suite in
``tests/test_bitset_wide.py`` pins at widths 65, 256 and 1024.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

#: Chunk width for the wide-mask iteration fast path.  One CPython
#: big-int digit is 30 bits, so any multiple-of-30-ish power of two
#: works; 64 keeps the inner loop on ints that fit two digits.
_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def mask_of(nodes: Iterable[int]) -> int:
    """Bitmask with every node id in ``nodes`` set."""
    mask = 0
    for n in nodes:
        mask |= 1 << n
    return mask


def popcount(mask: int) -> int:
    """Number of set bits (member count).

    Thin, named wrapper over ``int.bit_count()`` — hot paths call the
    method directly; this exists for call sites that want the intent
    spelled out and for the wide-mask benchmarks/tests to target.
    """
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield set-bit positions in ascending order."""
    if mask <= _WORD_MASK:
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low
        return
    base = 0
    while mask:
        chunk = mask & _WORD_MASK
        while chunk:
            low = chunk & -chunk
            yield base + low.bit_length() - 1
            chunk ^= low
        mask >>= _WORD_BITS
        base += _WORD_BITS


def bit_list(mask: int) -> List[int]:
    """Set-bit positions, ascending (== ``sorted()`` of the old set)."""
    out: List[int] = []
    if mask <= _WORD_MASK:
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out
    base = 0
    while mask:
        chunk = mask & _WORD_MASK
        while chunk:
            low = chunk & -chunk
            out.append(base + low.bit_length() - 1)
            chunk ^= low
        mask >>= _WORD_BITS
        base += _WORD_BITS
    return out


def bit_tuple(mask: int) -> Tuple[int, ...]:
    """Tuple form of :func:`bit_list` (fan-out target lists)."""
    return tuple(bit_list(mask))
