#!/usr/bin/env python3
"""Quickstart: simulate one STAMP-like workload under the baseline HTM
and under PUNO, and compare the headline metrics.

Run:  python examples/quickstart.py [workload] [scale]
"""

import sys

from repro import SystemConfig, make_stamp_workload, run_workload
from repro.analysis.report import render_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bayes"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    config = SystemConfig()  # the paper's Table II machine
    print("Simulated CMP:")
    print(config.describe())
    print()

    workload = make_stamp_workload(name, scale=scale)
    print(f"Workload: {name} ({workload.total_instances()} transactions, "
          f"{workload.total_ops()} memory ops)")
    print()

    base = run_workload(config, workload, cm="baseline")
    puno = run_workload(config.with_puno(), workload, cm="puno")

    rows = []
    for label, r in [("baseline", base), ("PUNO", puno)]:
        s = r.stats
        rows.append({
            "scheme": label,
            "commits": s.tx_committed,
            "aborts": s.tx_aborted,
            "abort %": round(100 * s.abort_rate(), 1),
            "false-aborting GETX %": round(
                100 * s.false_aborting_fraction(), 1),
            "network traffic": s.flit_router_traversals,
            "exec cycles": s.execution_cycles,
            "G/D ratio": round(s.gd_ratio(), 2),
        })
    print(render_table(rows, title=f"{name}: baseline vs PUNO"))

    b, p = base.stats, puno.stats
    print()
    print(f"PUNO vs baseline: aborts x{p.tx_aborted / max(b.tx_aborted, 1):.2f}, "
          f"traffic x{p.flit_router_traversals / b.flit_router_traversals:.2f}, "
          f"exec x{p.execution_cycles / b.execution_cycles:.2f}, "
          f"prediction accuracy {100 * p.prediction_accuracy():.0f}%")


if __name__ == "__main__":
    main()
