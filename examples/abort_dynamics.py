#!/usr/bin/env python3
"""Watch abort/commit dynamics over time: how the baseline burns
transactions in its hot phase, and how PUNO calms it down.

Run:  python examples/abort_dynamics.py [workload] [scale]
"""

import sys

from repro import SystemConfig, make_stamp_workload
from repro.analysis.report import render_table
from repro.analysis.timeseries import TimeSeriesSampler
from repro.system import System


def run_with_sampler(name, scale, cfg, cm):
    sampler = TimeSeriesSampler(interval=2000)
    wl = make_stamp_workload(name, scale=scale)
    system = System(cfg, wl, cm, sampler=sampler)
    system.run()
    return sampler


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bayes"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.6

    base = run_with_sampler(name, scale, SystemConfig(), "baseline")
    puno = run_with_sampler(name, scale, SystemConfig().with_puno(),
                            "puno")

    for label, sampler in [("baseline", base), ("PUNO", puno)]:
        rows = []
        for d in sampler.deltas():
            rows.append({
                "cycle": d["cycle"],
                "commits/kcyc": round(d["commits_per_kcycle"], 2),
                "aborts/kcyc": round(d["aborts_per_kcycle"], 2),
                "traffic/cyc": round(d["traffic_per_cycle"], 2),
            })
        print(render_table(rows, title=f"{name} under {label}",
                           floatfmt=".2f"))
        print()


if __name__ == "__main__":
    main()
