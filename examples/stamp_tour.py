#!/usr/bin/env python3
"""Run all eight STAMP analogues under the four schemes of the paper's
evaluation (baseline / random backoff / RMW-Pred / PUNO) and print the
normalized comparison — a miniature of Figs. 10, 11 and 13.

The grid fans out over worker processes (``jobs``; default all cores)
and goes through the on-disk result cache, so a second run at the same
scale replays instantly.  Set ``REPRO_NO_CACHE=1`` to force fresh
simulations.

Run:  python examples/stamp_tour.py [scale] [jobs]
"""

import os
import sys

from repro.analysis.parallel import WorkloadSpec
from repro.analysis.report import render_grouped
from repro.analysis.sweep import SchemeSweep, paper_schemes
from repro.workloads.stamp import STAMP_WORKLOADS


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    jobs = (int(sys.argv[2]) if len(sys.argv) > 2
            else int(os.environ.get("REPRO_JOBS", "0")))  # 0 = all cores
    specs = {
        name: WorkloadSpec(name, scale=scale)
        for name in STAMP_WORKLOADS
    }
    print(f"Running 8 workloads x 4 schemes at scale {scale} "
          f"(jobs={jobs or 'auto'}) ...")
    sweep = SchemeSweep(paper_schemes(), jobs=jobs)
    result = sweep.run(specs, verbose=True)

    schemes = ["baseline", "backoff", "rmw", "puno"]
    for metric, title in [
        ("aborts", "normalized transaction aborts (Fig. 10)"),
        ("traffic", "normalized network traffic (Fig. 11)"),
        ("exec", "normalized execution time (Fig. 13)"),
        ("gd_ratio", "normalized G/D ratio (Fig. 14, higher is better)"),
    ]:
        table = result.normalized(metric)
        print()
        print(render_grouped(table.values, schemes, title=title))


if __name__ == "__main__":
    main()
