#!/usr/bin/env python3
"""Sweep the contention level of a synthetic workload and watch where
PUNO's advantage appears.

The synthetic microbenchmark exposes the false-aborting driver
directly: every transaction reads ``tx_reads`` lines of one shared
region and writes a subset of them.  Shrinking the region raises the
probability that a write hits lines other transactions are reading —
more multicast invalidations, more false aborting, more for PUNO to
save.

Run:  python examples/contention_sweep.py
"""

from repro import SystemConfig, make_synthetic_workload, run_workload
from repro.analysis.report import render_table


def main() -> None:
    config = SystemConfig()
    rows = []
    for shared_lines in (512, 128, 64, 32, 16):
        wl = make_synthetic_workload(
            num_nodes=16, instances=16, shared_lines=shared_lines,
            tx_reads=6, tx_writes=2, think=2,
            writer_fraction=0.2, scanner_fraction=0.2,
            partition_writes=True)
        base = run_workload(config, wl, cm="baseline").stats
        puno = run_workload(config.with_puno(), wl, cm="puno").stats
        rows.append({
            "shared lines": shared_lines,
            "baseline abort %": round(100 * base.abort_rate(), 1),
            "false-aborting %": round(
                100 * base.false_aborting_fraction(), 1),
            "PUNO aborts x": round(
                puno.tx_aborted / max(base.tx_aborted, 1), 2),
            "PUNO traffic x": round(
                puno.flit_router_traversals
                / base.flit_router_traversals, 2),
            "PUNO exec x": round(
                puno.execution_cycles / base.execution_cycles, 2),
        })
    print(render_table(
        rows, title="Contention sweep: hotter region -> more false "
                    "aborting -> larger PUNO effect", floatfmt=".2f"))


if __name__ == "__main__":
    main()
