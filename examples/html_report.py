#!/usr/bin/env python3
"""Generate a self-contained HTML report of the whole evaluation —
every table and figure, with SVG charts — in one file.

Run:  python examples/html_report.py [scale] [output.html]
"""

import sys

from repro.analysis import experiments as E
from repro.analysis.htmlreport import Report
from repro.workloads.stamp import HIGH_CONTENTION

SCHEMES = ["baseline", "backoff", "rmw", "puno"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    out = sys.argv[2] if len(sys.argv) > 2 else "puno_report.html"

    rep = Report("PUNO reproduction — evaluation report")
    rep.add_text(f"All simulations at workload scale {scale}; every "
                 "chart is normalized to the baseline HTM as in the "
                 "paper (IPDPS 2014).")

    rep.add_table("Table I — baseline abort rates",
                  E.table1(scale=scale).data["rows"])
    rep.add_preformatted(E.table2().text, title="Table II — configuration")
    rep.add_table("Table III — PUNO area/power",
                  E.table3().data["rows"])

    fig2 = E.fig2(scale=scale)
    rep.add_bars("Fig. 2 — false-aborting transactional GETX (%)",
                 fig2.data["series"], unit="%")

    figs = E.full_evaluation(scale=scale)
    titles = {
        "fig10": "Fig. 10 — normalized transaction aborts",
        "fig11": "Fig. 11 — normalized network traffic",
        "fig12": "Fig. 12 — normalized directory blocking",
        "fig13": "Fig. 13 — normalized execution time",
        "fig14": "Fig. 14 — normalized G/D ratio (higher is better)",
    }
    for key, title in titles.items():
        rep.add_grouped_bars(title, figs[key].data["normalized"], SCHEMES)
        hc = figs[key].data["hc_average"]
        rep.add_text("high-contention average: " + ", ".join(
            f"{s}={hc[s]:.3f}" for s in SCHEMES))

    path = rep.write(out)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
