#!/usr/bin/env python3
"""Dissect PUNO's machinery on one workload: unicast coverage and
accuracy, P-Buffer dynamics, notification behaviour, and the component
ablation (unicast-only / notification-only / full).

Run:  python examples/puno_anatomy.py [workload] [scale]
"""

import sys

from repro import SystemConfig, make_stamp_workload, run_workload
from repro.analysis.report import render_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bayes"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.6
    base_cfg = SystemConfig()

    variants = {
        "baseline": ("baseline", base_cfg),
        "unicast-only": ("puno",
                         base_cfg.with_puno(notification_enabled=False)),
        "notification-only": ("puno",
                              base_cfg.with_puno(unicast_enabled=False)),
        "full PUNO": ("puno", base_cfg.with_puno()),
    }

    rows = []
    detail = {}
    for label, (cm, cfg) in variants.items():
        wl = make_stamp_workload(name, scale=scale)
        s = run_workload(cfg, wl, cm=cm).stats
        detail[label] = s
        rows.append({
            "variant": label,
            "aborts": s.tx_aborted,
            "traffic": s.flit_router_traversals,
            "exec": s.execution_cycles,
            "unicasts": s.puno_unicasts,
            "notifications": s.puno_notifications,
        })
    print(render_table(rows, title=f"PUNO component ablation on {name}"))

    s = detail["full PUNO"]
    total_pred = s.puno_unicasts + s.puno_multicasts
    print()
    print(f"Unicast coverage: {s.puno_unicasts}/{total_pred} "
          f"transactional GETX with sharers "
          f"({100 * s.puno_unicasts / max(total_pred, 1):.0f}%)")
    print(f"Prediction accuracy: {100 * s.prediction_accuracy():.0f}% "
          f"({s.puno_correct_predictions} correct, "
          f"{s.puno_mispredictions} mispredicted)")
    print(f"Misprediction causes: {s.puno_mp_no_tx} target-committed, "
          f"{s.puno_mp_no_conflict} no-conflict, "
          f"{s.puno_mp_younger} target-younger")
    print(f"Prediction declines: {dict(s.puno_declines)}")
    print(f"P-Buffer: {s.puno_pbuffer_updates} updates, "
          f"{s.puno_pbuffer_invalidations} MP invalidations, "
          f"{s.puno_timeouts} rollover timeouts")
    print(f"Notified backoff: {s.puno_notified_backoff_cycles} cycles "
          f"over {s.puno_notifications} notifications")


if __name__ == "__main__":
    main()
