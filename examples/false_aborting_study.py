#!/usr/bin/env python3
"""Reproduce the paper's motivation study (Section II-C):

* Fig. 2 — what fraction of transactional write requests incur false
  aborting under the baseline HTM;
* Fig. 3 — how many transactions one false-aborting request kills.

Run:  python examples/false_aborting_study.py [scale]
"""

import sys

from repro import SystemConfig, make_stamp_workload, run_workload
from repro.analysis.falseabort import breakdown, victim_distribution
from repro.analysis.report import render_series, render_table
from repro.workloads.stamp import HIGH_CONTENTION, STAMP_WORKLOADS


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.6
    config = SystemConfig()

    stats = {}
    for name in STAMP_WORKLOADS:
        wl = make_stamp_workload(name, scale=scale)
        stats[name] = run_workload(config, wl, cm="baseline").stats

    # Fig. 2: false-aborting fraction of transactional GETX
    series = {n: 100 * s.false_aborting_fraction()
              for n, s in stats.items()}
    series["average"] = sum(series.values()) / len(series)
    print(render_series(series, unit="%", floatfmt=".1f",
                        title="Fraction of transactional GETX that "
                              "incur false aborting (Fig. 2)"))

    # request breakdown (granted / nacked / false-aborting)
    rows = []
    for n, s in stats.items():
        b = breakdown(s)
        rows.append({"workload": n,
                     "granted %": round(100 * b["granted"], 1),
                     "nacked (clean) %": round(100 * b["nacked_clean"], 1),
                     "false aborting %": round(
                         100 * b["false_aborting"], 1)})
    print()
    print(render_table(rows, title="Transactional GETX breakdown",
                       floatfmt=".1f"))

    # Fig. 3: victims per false-aborting request, high contention only
    print()
    print("Victims per false-aborting request (Fig. 3):")
    for n in HIGH_CONTENTION:
        dist = victim_distribution(stats[n])
        nonzero = {k: round(100 * v, 1) for k, v in dist.items() if v > 0}
        print(f"  {n:10s} {nonzero}  "
              f"(mean {stats[n].false_abort_victims.mean():.2f}, "
              f"max {stats[n].false_abort_victims.max()})")


if __name__ == "__main__":
    main()
